// Copyright (c) hdc authors. Apache-2.0 license.
//
// Multi-crawl stress: many concurrent sessions (mixed algorithms, budgets,
// batch shapes) over one CrawlService must each produce exactly the crawl
// they would have produced alone. Built to run under ThreadSanitizer (the
// CI concurrency leg): the sessions share only the const LocalIndex and
// the service worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/crawlers.h"
#include "core/multi_crawl.h"
#include "gen/synthetic.h"
#include "server/crawl_service.h"

namespace hdc {
namespace {

std::shared_ptr<const Dataset> StressData() {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {6, 5, 4};
  gen.n = 1500;
  gen.seed = 77;
  return std::make_shared<const Dataset>(GenerateSyntheticCategorical(gen));
}

/// The mixed-algorithm job set: 6 sessions over one categorical space —
/// every categorical-capable algorithm, plus duplicates with different
/// batch shapes so several batch pipelines hit the shared pool at once.
std::vector<MultiCrawlJob> StressJobs() {
  std::vector<MultiCrawlJob> jobs(6);
  jobs[0].label = "dfs/seq";
  jobs[0].crawler = std::make_shared<DfsCrawler>();
  jobs[1].label = "dfs/batch8";
  jobs[1].crawler = std::make_shared<DfsCrawler>();
  jobs[1].crawl.batch_size = 8;
  jobs[2].label = "slice/eager";
  jobs[2].crawler = std::make_shared<SliceCoverCrawler>(/*lazy=*/false);
  jobs[2].crawl.batch_size = 4;
  jobs[3].label = "slice/lazy";
  jobs[3].crawler = std::make_shared<SliceCoverCrawler>(/*lazy=*/true);
  jobs[3].crawl.batch_size = 0;  // auto
  jobs[4].label = "hybrid";
  jobs[4].crawler = std::make_shared<HybridCrawler>();
  jobs[4].crawl.batch_size = 0;  // auto
  jobs[5].label = "slice/lazy-narrow";
  jobs[5].crawler = std::make_shared<SliceCoverCrawler>(/*lazy=*/true);
  jobs[5].crawl.batch_size = 16;
  return jobs;
}

// Sequential ground truth, then the same jobs concurrently: per-session
// query counts and extractions must be identical.
TEST(MultiCrawlTest, ConcurrentSessionsMatchSequentialRuns) {
  auto data = StressData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());

  // Ground truth: each job alone, one lane, over its own service.
  std::vector<uint64_t> expected_queries;
  for (const MultiCrawlJob& job : StressJobs()) {
    CrawlService solo(data, k);
    auto outcomes = RunMultiCrawl(&solo, {job}, /*max_concurrent=*/1);
    ASSERT_TRUE(outcomes[0].result.status.ok())
        << outcomes[0].label << ": "
        << outcomes[0].result.status.ToString();
    EXPECT_TRUE(Dataset::MultisetEquals(outcomes[0].result.extracted, *data))
        << outcomes[0].label;
    expected_queries.push_back(outcomes[0].session_queries);
  }

  // All six at once over one service with a shared 4-lane pool.
  CrawlServiceOptions options;
  options.max_parallelism = 4;
  CrawlService service(data, k, nullptr, options);
  std::vector<MultiCrawlJob> jobs = StressJobs();
  auto outcomes = RunMultiCrawl(&service, jobs);

  ASSERT_EQ(outcomes.size(), jobs.size());
  EXPECT_EQ(service.sessions_created(), jobs.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].result.status.ok())
        << outcomes[i].label << ": "
        << outcomes[i].result.status.ToString();
    EXPECT_EQ(outcomes[i].session_queries, expected_queries[i])
        << outcomes[i].label
        << ": a concurrent session must be billed exactly its own "
        << "sequential cost";
    EXPECT_EQ(outcomes[i].result.queries_issued, expected_queries[i])
        << outcomes[i].label;
    EXPECT_TRUE(Dataset::MultisetEquals(outcomes[i].result.extracted, *data))
        << outcomes[i].label;
  }
}

// Budgets bite per session: concurrent budgeted sessions stop at their own
// quota while unmetered neighbours complete.
TEST(MultiCrawlTest, ConcurrentBudgetsArePerSession) {
  auto data = StressData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlServiceOptions options;
  options.max_parallelism = 3;
  CrawlService service(data, k, nullptr, options);

  std::vector<MultiCrawlJob> jobs(4);
  jobs[0].label = "metered-20";
  jobs[0].crawler = std::make_shared<DfsCrawler>();
  jobs[0].session.max_queries = 20;
  jobs[1].label = "metered-35";
  jobs[1].crawler = std::make_shared<SliceCoverCrawler>(true);
  jobs[1].session.max_queries = 35;
  jobs[1].crawl.batch_size = 8;
  jobs[2].label = "free-dfs";
  jobs[2].crawler = std::make_shared<DfsCrawler>();
  jobs[2].crawl.batch_size = 4;
  jobs[3].label = "free-hybrid";
  jobs[3].crawler = std::make_shared<HybridCrawler>();

  auto outcomes = RunMultiCrawl(&service, jobs);
  EXPECT_TRUE(outcomes[0].result.status.IsResourceExhausted());
  EXPECT_EQ(outcomes[0].session_queries, 20u);
  EXPECT_TRUE(outcomes[1].result.status.IsResourceExhausted());
  EXPECT_EQ(outcomes[1].session_queries, 35u);
  for (size_t i : {size_t{2}, size_t{3}}) {
    ASSERT_TRUE(outcomes[i].result.status.ok()) << outcomes[i].label;
    EXPECT_TRUE(Dataset::MultisetEquals(outcomes[i].result.extracted, *data))
        << outcomes[i].label;
  }
}

// The starvation scenario: one wide full-space crawl (huge auto-sized
// batches) next to several narrow tenants (schema views over a slice of
// attribute 0), all over one service. Fair per-lane scheduling must keep
// the narrow sessions' progress independent of the wide session's flood:
// every session still produces byte-identical extraction and query counts
// to its isolated run, the narrow tenants all finish while the wide crawl
// is still running (bounded interleaving — under FIFO admission their
// batches would queue behind the wide session's backlog), and the metrics
// snapshots sampled mid-run stay coherent. Runs under TSan in CI.
TEST(MultiCrawlTest, WideSessionDoesNotStarveNarrowTenants) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 12000;
  gen.value_range = 3000;
  gen.seed = 99;
  auto data =
      std::make_shared<const Dataset>(GenerateSyntheticNumeric(gen));
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());

  // Narrow tenants see a ~1/10 band of attribute 0 (numeric bounds may be
  // tightened by a schema view; Schema::CompatibleWith allows it).
  auto narrowed = [&](size_t band) {
    std::vector<AttributeSpec> attrs;
    for (size_t i = 0; i < data->schema()->num_attributes(); ++i) {
      attrs.push_back(data->schema()->attribute(i));
    }
    const Value lo = attrs[0].lo, hi = attrs[0].hi;
    const Value width = (hi - lo + 1) / 10;
    attrs[0].lo = lo + static_cast<Value>(band) * width;
    attrs[0].hi = attrs[0].lo + width - 1;
    return Schema::Make(std::move(attrs));
  };

  constexpr size_t kNarrow = 3;
  std::vector<MultiCrawlJob> jobs(1 + kNarrow);
  jobs[0].label = "wide";
  jobs[0].crawler = std::make_shared<RankShrink>();
  jobs[0].crawl.batch_size = 0;  // auto: floods the pool with wide rounds
  jobs[0].session.max_lane_parallelism = 1;  // admission-capped
  for (size_t i = 0; i < kNarrow; ++i) {
    MultiCrawlJob& job = jobs[1 + i];
    job.label = "narrow-" + std::to_string(i);
    job.crawler = std::make_shared<BinaryShrink>();
    job.crawl.batch_size = 4;
    job.session.schema_override = narrowed(i);
    job.session.weight = 2;
  }

  // Isolated ground truth per job, and the narrow slices' expected sizes.
  std::vector<uint64_t> expected_queries;
  std::vector<Dataset> expected_extractions;
  for (const MultiCrawlJob& job : jobs) {
    CrawlService solo(data, k);
    auto outcomes = RunMultiCrawl(&solo, {job}, /*max_concurrent=*/1);
    ASSERT_TRUE(outcomes[0].result.status.ok())
        << outcomes[0].label << ": "
        << outcomes[0].result.status.ToString();
    expected_queries.push_back(outcomes[0].session_queries);
    expected_extractions.push_back(std::move(outcomes[0].result.extracted));
  }

  // Contended run. Completion order is observed through each session's
  // last answered query; metrics snapshots stream concurrently.
  CrawlServiceOptions options;
  options.max_parallelism = 4;
  CrawlService service(data, k, nullptr, options);
  std::vector<std::atomic<std::chrono::steady_clock::duration::rep>>
      last_answer(jobs.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].session.observer = [&, i](const Query&, const Response&) {
      last_answer[i].store(
          (std::chrono::steady_clock::now() - t0).count(),
          std::memory_order_relaxed);
    };
  }
  std::atomic<uint64_t> snapshots{0};
  MultiCrawlOptions run;
  run.metrics_period = std::chrono::milliseconds(2);
  run.on_metrics = [&](const CrawlServiceMetrics& m) {
    snapshots.fetch_add(1);
    EXPECT_LE(m.sessions_active, jobs.size());
    EXPECT_LE(m.pool_busy, m.pool_threads);
    for (const SessionMetrics& s : m.sessions) {
      EXPECT_GE(s.queue_wait_total_seconds, 0.0);
      EXPECT_GE(s.queue_wait_max_seconds, 0.0);
    }
  };
  auto outcomes = RunMultiCrawl(&service, jobs, run);

  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].result.status.ok())
        << outcomes[i].label << ": "
        << outcomes[i].result.status.ToString();
    EXPECT_EQ(outcomes[i].session_queries, expected_queries[i])
        << outcomes[i].label
        << ": contention must never change a session's query bill";
    EXPECT_TRUE(Dataset::MultisetEquals(outcomes[i].result.extracted,
                                        expected_extractions[i]))
        << outcomes[i].label
        << ": contention must never change a session's extraction";
  }
  // Bounded interleaving: narrow tenants complete their conversations
  // while the wide session is still answering. The wide crawl is ~10-20x
  // the work of a narrow slice, so each tenant finishes first by a wide
  // margin once none is parked behind the wide session's backlog. The
  // completion order is wall-clock, so allow the OS to have parked *one*
  // tenant thread (e.g. an oversubscribed TSan runner) — but if a
  // majority of tenants outlasted the wide crawl, scheduling is broken.
  size_t finished_before_wide = 0;
  for (size_t i = 1; i < jobs.size(); ++i) {
    if (last_answer[i].load() < last_answer[0].load()) {
      ++finished_before_wide;
    }
  }
  EXPECT_GE(finished_before_wide, kNarrow - 1)
      << "narrow tenants were starved behind the wide session's backlog";
  EXPECT_GE(snapshots.load(), 1u);  // the final snapshot always fires

  // After the run every session is retired, but the service remembers the
  // total bill.
  const CrawlServiceMetrics final_metrics = service.MetricsSnapshot();
  EXPECT_EQ(final_metrics.sessions_active, 0u);
  EXPECT_EQ(final_metrics.sessions_created, jobs.size());
  uint64_t total = 0;
  for (const auto& outcome : outcomes) total += outcome.session_queries;
  EXPECT_EQ(final_metrics.queries_served, total);
  EXPECT_GT(final_metrics.queries_per_second, 0.0);
}

// The fairness knobs are scheduling-only: whatever weights and lane caps
// sessions run under, their conversations stay byte-identical to the
// unweighted isolated runs.
TEST(MultiCrawlTest, WeightsAndCapsNeverChangeConversations) {
  auto data = StressData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());

  std::vector<uint64_t> expected_queries;
  for (const MultiCrawlJob& job : StressJobs()) {
    CrawlService solo(data, k);
    auto outcomes = RunMultiCrawl(&solo, {job}, /*max_concurrent=*/1);
    ASSERT_TRUE(outcomes[0].result.status.ok()) << outcomes[0].label;
    expected_queries.push_back(outcomes[0].session_queries);
  }

  CrawlServiceOptions options;
  options.max_parallelism = 4;
  CrawlService service(data, k, nullptr, options);
  std::vector<MultiCrawlJob> jobs = StressJobs();
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].session.weight = static_cast<unsigned>(1 + i % 3);
    jobs[i].session.max_lane_parallelism = static_cast<unsigned>(i % 3);
  }
  auto outcomes = RunMultiCrawl(&service, jobs);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].result.status.ok()) << outcomes[i].label;
    EXPECT_EQ(outcomes[i].session_queries, expected_queries[i])
        << outcomes[i].label;
    EXPECT_TRUE(Dataset::MultisetEquals(outcomes[i].result.extracted, *data))
        << outcomes[i].label;
  }
}

// Concurrent audit logs stay per-session and faithful: each transcript has
// exactly the session's answered queries, uncontaminated by neighbours.
TEST(MultiCrawlTest, ConcurrentAuditLogsAreFaithful) {
  auto data = StressData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlServiceOptions options;
  options.max_parallelism = 4;
  CrawlService service(data, k, nullptr, options);

  std::vector<std::ostringstream> logs(4);
  std::vector<MultiCrawlJob> jobs(4);
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].label = "logged-" + std::to_string(i);
    jobs[i].crawler = std::make_shared<DfsCrawler>();
    jobs[i].crawl.batch_size = static_cast<uint32_t>(i * 4);  // 0,4,8,12
    jobs[i].session.query_log = &logs[i];
  }
  auto outcomes = RunMultiCrawl(&service, jobs);

  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].result.status.ok()) << outcomes[i].label;
    std::istringstream in(logs[i].str());
    std::string line;
    uint64_t lines = 0;
    while (std::getline(in, line)) {
      ++lines;
      // Every line begins with its 1-based per-session sequence index.
      EXPECT_EQ(line.substr(0, line.find('\t')), std::to_string(lines));
    }
    EXPECT_EQ(lines, outcomes[i].session_queries) << outcomes[i].label;
  }
}

}  // namespace
}  // namespace hdc
