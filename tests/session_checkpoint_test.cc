// Copyright (c) hdc authors. Apache-2.0 license.
//
// Composed session+crawl checkpoints: one file carrying the service-side
// budget accounting alongside the crawl state, so an operator can stop a
// budgeted extraction and continue it in a new process — either with the
// remaining quota restored, or against a fresh daily quota
// (SessionResumeOptions::restore_budget = false).
#include "core/session_checkpoint.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/crawl_service.h"
#include "server/local_server.h"

namespace hdc {
namespace {

std::shared_ptr<Dataset> MakeData(uint64_t seed) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {5, 6, 4};
  gen.n = 450;
  gen.seed = seed;
  return std::make_shared<Dataset>(GenerateSyntheticCategorical(gen));
}

TEST(SessionCheckpointTest, BudgetAndCrawlStateRoundTrip) {
  auto data = MakeData(91);
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlService service(data, k);

  SessionOptions session_options;
  session_options.label = "nightly crawl #7";  // hostile: spaces survive
  session_options.max_queries = 40;
  auto session = service.CreateSession(session_options);

  DfsCrawler crawler;
  CrawlResult partial = crawler.Crawl(session.get());
  ASSERT_TRUE(partial.status.IsResourceExhausted());
  const uint64_t remaining = session->budget_remaining();
  EXPECT_EQ(remaining, 0u);

  std::stringstream stream;
  ASSERT_TRUE(
      SaveSessionCheckpoint(*session, *partial.resume_state, &stream).ok());

  // A fresh budgeted session in a new process picks up the recorded
  // remaining quota...
  SessionOptions fresh_options;
  fresh_options.max_queries = 500;  // will be overwritten by the checkpoint
  auto resumed_session = service.CreateSession(fresh_options);
  std::shared_ptr<CrawlState> restored;
  ASSERT_TRUE(
      LoadSessionCheckpoint(&stream, resumed_session.get(), &restored).ok());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(resumed_session->budget_remaining(), remaining);
  EXPECT_EQ(restored->queries_issued, partial.resume_state->queries_issued);

  // ...and with zero quota left the resume immediately runs dry again.
  DfsCrawler resumed_crawler;
  CrawlResult still_dry = resumed_crawler.Resume(resumed_session.get(),
                                                 restored);
  EXPECT_TRUE(still_dry.status.IsResourceExhausted());
}

TEST(SessionCheckpointTest, DailyQuotaResumeCompletesAcrossRuns) {
  auto data = MakeData(92);
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlService service(data, k);

  // Reference, unbudgeted.
  auto ref_session = service.CreateSession();
  DfsCrawler ref_crawler;
  CrawlResult reference = ref_crawler.Crawl(ref_session.get());
  ASSERT_TRUE(reference.status.ok());

  const std::string path = ::testing::TempDir() + "/hdc_session_ckpt.txt";
  constexpr uint64_t kDailyQuota = 23;

  // Day 1.
  SessionOptions day_options;
  day_options.label = "daily";
  day_options.max_queries = kDailyQuota;
  auto session = service.CreateSession(day_options);
  DfsCrawler crawler;
  CrawlResult result = crawler.Crawl(session.get());
  int days = 1;
  while (result.status.IsResourceExhausted()) {
    ASSERT_LT(days, 1000);
    ASSERT_TRUE(SaveSessionCheckpointFile(*session, *result.resume_state,
                                          path).ok());
    // Next day, next process: fresh session with a fresh quota; the
    // checkpoint's spent budget is deliberately NOT restored.
    session = service.CreateSession(day_options);
    std::shared_ptr<CrawlState> restored;
    SessionResumeOptions resume_options;
    resume_options.restore_budget = false;
    ASSERT_TRUE(LoadSessionCheckpointFile(path, session.get(), &restored,
                                          resume_options).ok());
    EXPECT_EQ(session->budget_remaining(), kDailyQuota);
    DfsCrawler next;
    result = next.Resume(session.get(), restored);
    ++days;
  }
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(days, 1);
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_EQ(result.queries_issued, reference.queries_issued);
}

TEST(SessionCheckpointTest, ResumingBudgetedCheckpointNeedsABudgetedSession) {
  auto data = MakeData(93);
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlService service(data, k);

  SessionOptions budgeted;
  budgeted.max_queries = 30;
  auto session = service.CreateSession(budgeted);
  DfsCrawler crawler;
  CrawlResult partial = crawler.Crawl(session.get());
  ASSERT_TRUE(partial.status.IsResourceExhausted());

  std::stringstream stream;
  ASSERT_TRUE(
      SaveSessionCheckpoint(*session, *partial.resume_state, &stream).ok());

  // An unlimited session cannot silently adopt a budgeted checkpoint: the
  // recorded remaining quota would be unenforceable.
  auto unlimited = service.CreateSession();
  std::shared_ptr<CrawlState> restored;
  Status s = LoadSessionCheckpoint(&stream, unlimited.get(), &restored);
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition) << s.ToString();
  EXPECT_EQ(restored, nullptr);

  // Explicitly declining budget restoration makes the same resume legal.
  std::stringstream again;
  ASSERT_TRUE(
      SaveSessionCheckpoint(*session, *partial.resume_state, &again).ok());
  SessionResumeOptions no_budget;
  no_budget.restore_budget = false;
  ASSERT_TRUE(LoadSessionCheckpoint(&again, unlimited.get(), &restored,
                                    no_budget).ok());
  ASSERT_NE(restored, nullptr);
  DfsCrawler finisher;
  CrawlResult done = finisher.Resume(unlimited.get(), restored);
  ASSERT_TRUE(done.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(done.extracted, *data));
}

TEST(SessionCheckpointTest, RecordedLabelSurvivesHostileCharacters) {
  auto data = MakeData(94);
  CrawlService service(data, std::max<uint64_t>(8, data->MaxPointMultiplicity()));
  SessionOptions session_options;
  session_options.label = "quota: day #2, shard\t5";
  session_options.max_queries = 10;
  auto session = service.CreateSession(session_options);
  DfsCrawler crawler;
  CrawlResult partial = crawler.Crawl(session.get());
  ASSERT_TRUE(partial.status.IsResourceExhausted());

  std::stringstream stream;
  ASSERT_TRUE(
      SaveSessionCheckpoint(*session, *partial.resume_state, &stream).ok());

  SessionOptions target_options;
  target_options.label = "target";
  target_options.max_queries = 10;
  auto target = service.CreateSession(target_options);
  std::string recorded;
  ASSERT_TRUE(target->ResumeFrom(&stream, /*restore_budget=*/true,
                                 &recorded).ok());
  EXPECT_EQ(recorded, "quota: day #2, shard\t5");
  // The label is an identity fixed at creation, never overwritten.
  EXPECT_EQ(target->label(), "target");
}

TEST(SessionCheckpointTest, TruncatedSessionHeaderIsTypedAndAtomic) {
  auto data = MakeData(95);
  CrawlService service(data, std::max<uint64_t>(8, data->MaxPointMultiplicity()));
  SessionOptions budgeted;
  budgeted.max_queries = 10;
  auto session = service.CreateSession(budgeted);
  DfsCrawler crawler;
  CrawlResult partial = crawler.Crawl(session.get());
  ASSERT_TRUE(partial.status.IsResourceExhausted());

  std::ostringstream out;
  ASSERT_TRUE(
      SaveSessionCheckpoint(*session, *partial.resume_state, &out).ok());
  const std::string text = out.str();

  // Cut inside the session header (first three lines).
  const size_t second_newline = text.find('\n', text.find('\n') + 1);
  ASSERT_NE(second_newline, std::string::npos);
  std::istringstream in(text.substr(0, second_newline));
  auto target = service.CreateSession(budgeted);
  const uint64_t before = target->budget_remaining();
  std::shared_ptr<CrawlState> restored;
  Status s = LoadSessionCheckpoint(&in, target.get(), &restored);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("line"), std::string::npos) << s.ToString();
  EXPECT_EQ(restored, nullptr);
  // A failed resume never half-applies: the budget is untouched.
  EXPECT_EQ(target->budget_remaining(), before);
}

}  // namespace
}  // namespace hdc
