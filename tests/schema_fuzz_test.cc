// Copyright (c) hdc authors. Apache-2.0 license.
//
// Randomized-schema fuzz of the flagship hybrid crawler: arbitrary
// arities, attribute-kind layouts, domain sizes, skews and duplicate
// loads — every instance must extract the exact multiset. Also exercises
// the QueryLogServer audit decorator on one instance.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/hybrid.h"
#include "server/decorators.h"
#include "server/local_server.h"
#include "util/random.h"

namespace hdc {
namespace {

/// Builds a random schema with 1..5 attributes of random kinds.
SchemaPtr RandomSchema(Rng* rng) {
  const size_t d = 1 + rng->UniformU64(5);
  std::vector<AttributeSpec> attrs;
  for (size_t i = 0; i < d; ++i) {
    if (rng->Bernoulli(0.5)) {
      attrs.push_back(AttributeSpec::Categorical(
          "C" + std::to_string(i), 2 + rng->UniformU64(30)));
    } else {
      const Value lo = rng->UniformInt(-500, 0);
      attrs.push_back(AttributeSpec::NumericBounded(
          "N" + std::to_string(i), lo, lo + rng->UniformInt(1, 2000)));
    }
  }
  return Schema::Make(std::move(attrs));
}

Dataset RandomData(const SchemaPtr& schema, Rng* rng) {
  const size_t n = 50 + rng->UniformU64(1500);
  Dataset data(schema);
  // Optional duplicate pool to stress point multiplicity.
  std::vector<Tuple> pool;
  const double dup_prob = rng->Bernoulli(0.5) ? 0.1 : 0.0;

  auto draw = [&]() {
    std::vector<Value> v(schema->num_attributes());
    for (size_t a = 0; a < v.size(); ++a) {
      const AttributeSpec& spec = schema->attribute(a);
      v[a] = spec.is_categorical()
                 ? rng->UniformInt(1, static_cast<Value>(spec.domain_size))
                 : rng->UniformInt(spec.lo, spec.hi);
    }
    return Tuple(std::move(v));
  };

  for (int i = 0; i < 3; ++i) pool.push_back(draw());
  for (size_t i = 0; i < n; ++i) {
    if (dup_prob > 0 && rng->Bernoulli(dup_prob)) {
      data.AddUnchecked(pool[rng->UniformU64(pool.size())]);
    } else {
      data.AddUnchecked(draw());
    }
  }
  return data;
}

class SchemaFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchemaFuzz, HybridExtractsExactlyOnRandomInstance) {
  Rng rng(GetParam() * 7919 + 13);
  SchemaPtr schema = RandomSchema(&rng);
  auto data = std::make_shared<Dataset>(RandomData(schema, &rng));
  ASSERT_TRUE(data->Validate().ok()) << schema->ToString();
  const uint64_t k = std::max<uint64_t>(1 + rng.UniformU64(64),
                                        data->MaxPointMultiplicity());

  LocalServer server(data, k, MakeRandomPriorityPolicy(GetParam()));
  HybridCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok())
      << schema->ToString() << " k=" << k << ": "
      << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data))
      << schema->ToString() << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaFuzz, ::testing::Range<uint64_t>(0, 24),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(QueryLogServerTest, LogsEveryIssuedQuery) {
  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("C", 3),
      AttributeSpec::NumericBounded("N", 0, 50),
  });
  auto data = std::make_shared<Dataset>(schema);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    data->Add(Tuple({rng.UniformInt(1, 3), rng.UniformInt(0, 50)}));
  }
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  LocalServer base(data, k);
  std::ostringstream log;
  QueryLogServer logged(&base, &log);

  HybridCrawler crawler;
  CrawlResult result = crawler.Crawl(&logged);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(logged.logged(), result.queries_issued);

  // One line per query, each mentioning an outcome tag.
  size_t lines = 0, outcomes = 0;
  std::istringstream in(log.str());
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    outcomes += line.find("resolved") != std::string::npos ||
                line.find("OVERFLOW") != std::string::npos;
  }
  EXPECT_EQ(lines, result.queries_issued);
  EXPECT_EQ(outcomes, lines);
}

}  // namespace
}  // namespace hdc
