// Copyright (c) hdc authors. Apache-2.0 license.
//
// Instantiates the HiddenDbServer conformance suite (server_conformance.h)
// over every server shape in the tree:
//
//   local    — a plain LocalServer (the paper's Section 6 methodology);
//   decorated— an owned metering stack Budget(Counting(Observed(Local)));
//   session  — a CrawlService ServerSession on a shared index + pool;
//   remote   — a RemoteServer talking to a ServiceEndpoint over TCP
//              loopback (a live CrawlService behind a real socket);
//   sharded  — a ShardedServer scatter-gathering over three in-process
//              shard backends of a hash-partitioned plan;
//   sharded_remote — the same scatter-gather where every shard backend is
//              a RemoteServer dialing its own live endpoint;
//   cached   — a CachingServer in always-fresh mode over a LocalServer:
//              every probe is a miss, so the decorator must be
//              byte-identical to the undecorated conversation;
//   cached_remote — the same always-fresh CachingServer over a RemoteServer
//              dialing a live endpoint, proving transparency holds across
//              the wire too.
//
// A future backend (HTTP) conforms by adding a factory here — the suite
// itself never changes.
#include "server_conformance.h"

#include <memory>
#include <utility>
#include <vector>

#include "net/remote_server.h"
#include "net/service_endpoint.h"
#include "server/caching_server.h"
#include "server/crawl_service.h"
#include "server/sharding.h"
#include "util/macros.h"

namespace hdc {
namespace conformance {
namespace {

// --- local ------------------------------------------------------------------

class LocalBackend : public BackendHandle {
 public:
  explicit LocalBackend(uint64_t budget) {
    server_ = std::make_unique<LocalServer>(ConformanceDataset(),
                                            kConformanceK);
    if (budget != kNoBudget) {
      budget_ = std::make_unique<BudgetServer>(server_.get(), budget);
    }
  }

  HiddenDbServer* server() override {
    return budget_ != nullptr ? static_cast<HiddenDbServer*>(budget_.get())
                              : server_.get();
  }
  uint64_t queries_served() override { return server_->queries_served(); }
  void RefillBudget(uint64_t max_queries) override {
    HDC_CHECK(budget_ != nullptr);
    budget_->Refill(max_queries);
  }

 private:
  std::unique_ptr<LocalServer> server_;
  std::unique_ptr<BudgetServer> budget_;
};

// --- decorated stack --------------------------------------------------------

class DecoratedBackend : public BackendHandle {
 public:
  explicit DecoratedBackend(uint64_t budget) {
    auto local = std::make_unique<LocalServer>(ConformanceDataset(),
                                               kConformanceK);
    auto counting = std::make_unique<CountingServer>(std::move(local),
                                                     /*keep_trace=*/true);
    counting_ = counting.get();
    std::unique_ptr<HiddenDbServer> stack = std::move(counting);
    if (budget != kNoBudget) {
      auto budgeted =
          std::make_unique<BudgetServer>(std::move(stack), budget);
      budget_ = budgeted.get();
      stack = std::move(budgeted);
    }
    top_ = std::move(stack);
  }

  HiddenDbServer* server() override { return top_.get(); }
  uint64_t queries_served() override { return counting_->queries(); }
  void RefillBudget(uint64_t max_queries) override {
    HDC_CHECK(budget_ != nullptr);
    budget_->Refill(max_queries);
  }

 private:
  std::unique_ptr<HiddenDbServer> top_;
  CountingServer* counting_ = nullptr;
  BudgetServer* budget_ = nullptr;
};

// --- service session --------------------------------------------------------

class SessionBackend : public BackendHandle {
 public:
  explicit SessionBackend(uint64_t budget) {
    CrawlServiceOptions options;
    options.max_parallelism = 2;  // exercise the pooled evaluation path
    service_ = std::make_unique<CrawlService>(ConformanceDataset(),
                                              kConformanceK, nullptr,
                                              options);
    SessionOptions session;
    session.label = "conformance";
    if (budget != kNoBudget) session.max_queries = budget;
    session_ = service_->CreateSession(std::move(session));
  }

  HiddenDbServer* server() override { return session_.get(); }
  uint64_t queries_served() override { return session_->queries_served(); }
  void RefillBudget(uint64_t max_queries) override {
    session_->RefillBudget(max_queries);
  }

 private:
  std::unique_ptr<CrawlService> service_;
  std::unique_ptr<ServerSession> session_;
};

// --- remote over loopback ---------------------------------------------------

class RemoteBackend : public BackendHandle {
 public:
  explicit RemoteBackend(uint64_t budget) {
    CrawlServiceOptions options;
    options.max_parallelism = 2;
    service_ = std::make_unique<CrawlService>(ConformanceDataset(),
                                              kConformanceK, nullptr,
                                              options);
    endpoint_ = std::make_unique<net::ServiceEndpoint>(service_.get());
    HDC_CHECK_OK(endpoint_->Start());
    net::RemoteServerOptions remote;
    remote.label = "conformance-remote";
    remote.max_queries = budget;  // UINT64_MAX == unlimited, as kNoBudget
    HDC_CHECK_OK(net::RemoteServer::Connect("127.0.0.1", endpoint_->port(),
                                            remote, &client_));
  }

  ~RemoteBackend() override {
    client_.reset();    // hang up before tearing the endpoint down
    endpoint_->Stop();  // joins connection threads; sessions retire
  }

  HiddenDbServer* server() override { return client_.get(); }

  uint64_t queries_served() override {
    net::StatsMessage stats;
    HDC_CHECK_OK(client_->FetchStats(&stats));
    return stats.queries_served;
  }

  void RefillBudget(uint64_t max_queries) override {
    HDC_CHECK_OK(client_->RefillBudget(max_queries));
  }

 private:
  std::unique_ptr<CrawlService> service_;
  std::unique_ptr<net::ServiceEndpoint> endpoint_;
  std::unique_ptr<net::RemoteServer> client_;
};

// --- sharded scatter-gather -------------------------------------------------

class ShardedBackend : public BackendHandle {
 public:
  explicit ShardedBackend(uint64_t budget) {
    ShardPlanOptions plan_options;
    plan_options.num_shards = 3;
    ShardPlan plan = ShardPlan::Partition(ConformanceDataset(),
                                          kConformanceK, nullptr,
                                          plan_options);
    sharded_ = ShardedServer::OverPlan(plan);
    if (budget != kNoBudget) {
      budget_ = std::make_unique<BudgetServer>(sharded_.get(), budget);
    }
  }

  HiddenDbServer* server() override {
    return budget_ != nullptr ? static_cast<HiddenDbServer*>(budget_.get())
                              : sharded_.get();
  }
  uint64_t queries_served() override { return sharded_->queries_answered(); }
  void RefillBudget(uint64_t max_queries) override {
    HDC_CHECK(budget_ != nullptr);
    budget_->Refill(max_queries);
  }

 private:
  std::unique_ptr<ShardedServer> sharded_;
  std::unique_ptr<BudgetServer> budget_;
};

// --- sharded over live remote shards ----------------------------------------

class ShardedRemoteBackend : public BackendHandle {
 public:
  explicit ShardedRemoteBackend(uint64_t budget) {
    ShardPlanOptions plan_options;
    plan_options.num_shards = 2;
    ShardPlan plan = ShardPlan::Partition(ConformanceDataset(),
                                          kConformanceK, nullptr,
                                          plan_options);
    std::vector<ShardBackend> backends;
    for (size_t s = 0; s < plan.num_shards(); ++s) {
      services_.push_back(
          std::make_unique<CrawlService>(plan.BuildShardIndex(s)));
      endpoints_.push_back(std::make_unique<net::ServiceEndpoint>(
          services_.back().get()));
      HDC_CHECK_OK(endpoints_.back()->Start());
      net::RemoteServerOptions remote;
      remote.label = "conformance-shard-" + std::to_string(s);
      std::unique_ptr<net::RemoteServer> client;
      HDC_CHECK_OK(net::RemoteServer::Connect(
          "127.0.0.1", endpoints_.back()->port(), remote, &client));
      ShardBackend backend;
      backend.server = std::move(client);
      backend.global_ids = plan.shard_global_ids(s);
      backends.push_back(std::move(backend));
    }
    sharded_ = std::make_unique<ShardedServer>(
        std::move(backends), plan.shared_global_priorities());
    if (budget != kNoBudget) {
      budget_ = std::make_unique<BudgetServer>(sharded_.get(), budget);
    }
  }

  ~ShardedRemoteBackend() override {
    sharded_.reset();  // hang the shard clients up first
    for (auto& endpoint : endpoints_) endpoint->Stop();
  }

  HiddenDbServer* server() override {
    return budget_ != nullptr ? static_cast<HiddenDbServer*>(budget_.get())
                              : sharded_.get();
  }
  uint64_t queries_served() override { return sharded_->queries_answered(); }
  void RefillBudget(uint64_t max_queries) override {
    HDC_CHECK(budget_ != nullptr);
    budget_->Refill(max_queries);
  }

 private:
  std::vector<std::unique_ptr<CrawlService>> services_;
  std::vector<std::unique_ptr<net::ServiceEndpoint>> endpoints_;
  std::unique_ptr<ShardedServer> sharded_;
  std::unique_ptr<BudgetServer> budget_;
};

// --- caching decorator, always-fresh ----------------------------------------

AnswerCacheOptions AlwaysFresh() {
  AnswerCacheOptions options;
  options.policy = RevalidationPolicy::kAlwaysFresh;
  return options;
}

class CachedBackend : public BackendHandle {
 public:
  explicit CachedBackend(uint64_t budget) {
    server_ = std::make_unique<LocalServer>(ConformanceDataset(),
                                            kConformanceK);
    caching_ = std::make_unique<CachingServer>(server_.get(), AlwaysFresh());
    if (budget != kNoBudget) {
      budget_ = std::make_unique<BudgetServer>(caching_.get(), budget);
    }
  }

  HiddenDbServer* server() override {
    return budget_ != nullptr ? static_cast<HiddenDbServer*>(budget_.get())
                              : caching_.get();
  }
  uint64_t queries_served() override { return server_->queries_served(); }
  void RefillBudget(uint64_t max_queries) override {
    HDC_CHECK(budget_ != nullptr);
    budget_->Refill(max_queries);
  }

 private:
  std::unique_ptr<LocalServer> server_;
  std::unique_ptr<CachingServer> caching_;
  std::unique_ptr<BudgetServer> budget_;
};

// --- caching decorator over a live remote endpoint --------------------------

class CachedRemoteBackend : public BackendHandle {
 public:
  explicit CachedRemoteBackend(uint64_t budget) {
    CrawlServiceOptions options;
    options.max_parallelism = 2;
    service_ = std::make_unique<CrawlService>(ConformanceDataset(),
                                              kConformanceK, nullptr,
                                              options);
    endpoint_ = std::make_unique<net::ServiceEndpoint>(service_.get());
    HDC_CHECK_OK(endpoint_->Start());
    net::RemoteServerOptions remote;
    remote.label = "conformance-cached-remote";
    remote.max_queries = budget;
    HDC_CHECK_OK(net::RemoteServer::Connect("127.0.0.1", endpoint_->port(),
                                            remote, &client_));
    caching_ =
        std::make_unique<CachingServer>(client_.get(), AlwaysFresh());
  }

  ~CachedRemoteBackend() override {
    caching_.reset();
    client_.reset();
    endpoint_->Stop();
  }

  HiddenDbServer* server() override { return caching_.get(); }

  uint64_t queries_served() override {
    net::StatsMessage stats;
    HDC_CHECK_OK(client_->FetchStats(&stats));
    return stats.queries_served;
  }

  void RefillBudget(uint64_t max_queries) override {
    HDC_CHECK_OK(client_->RefillBudget(max_queries));
  }

 private:
  std::unique_ptr<CrawlService> service_;
  std::unique_ptr<net::ServiceEndpoint> endpoint_;
  std::unique_ptr<net::RemoteServer> client_;
  std::unique_ptr<CachingServer> caching_;
};

template <typename Backend>
BackendFactory MakeFactory(const std::string& name) {
  BackendFactory factory;
  factory.name = name;
  factory.make = [](uint64_t budget) -> std::unique_ptr<BackendHandle> {
    return std::make_unique<Backend>(budget);
  };
  return factory;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ServerConformanceTest,
    ::testing::Values(MakeFactory<LocalBackend>("local"),
                      MakeFactory<DecoratedBackend>("decorated"),
                      MakeFactory<SessionBackend>("session"),
                      MakeFactory<RemoteBackend>("remote"),
                      MakeFactory<ShardedBackend>("sharded"),
                      MakeFactory<ShardedRemoteBackend>("sharded_remote"),
                      MakeFactory<CachedBackend>("cached"),
                      MakeFactory<CachedRemoteBackend>("cached_remote")),
    [](const ::testing::TestParamInfo<BackendFactory>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace conformance
}  // namespace hdc
