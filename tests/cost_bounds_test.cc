// Copyright (c) hdc authors. Apache-2.0 license.
//
// Theorem 1's upper bounds as executable assertions, swept over k
// (parameterized): rank-shrink within the Lemma 2 envelope, slice-cover
// within Lemma 4, hybrid within Lemma 9 — on data with duplicates and skew
// (the regimes where the constants are actually exercised).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/hybrid.h"
#include "core/rank_shrink.h"
#include "core/slice_cover.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace hdc {
namespace {

using testing_util::ExpectExactExtraction;

double CeilDiv(uint64_t a, uint64_t b) {
  return std::ceil(static_cast<double>(a) / static_cast<double>(b));
}

class BoundsSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundsSweep, RankShrinkWithinLemma2) {
  SyntheticNumericOptions gen;
  gen.d = 3;
  gen.n = 6000;
  gen.value_range = 900;
  gen.value_skew = 0.5;
  gen.duplicate_prob = 0.05;
  gen.duplicate_pool = 8;
  gen.seed = 101;
  Dataset data = GenerateSyntheticNumeric(gen);
  const uint64_t k = std::max(GetParam(), data.MaxPointMultiplicity());

  RankShrink crawler;
  CrawlResult result = ExpectExactExtraction(&crawler, data, k);
  // Lemma 2 with alpha = 20 plus small-input slack.
  const double bound = 20.0 * 3.0 * CeilDiv(gen.n, k) + 8.0 * 3 + 8.0;
  EXPECT_LE(static_cast<double>(result.queries_issued), bound)
      << "k=" << k;
}

TEST_P(BoundsSweep, SliceCoverWithinLemma4) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {10, 18, 26};
  gen.n = 6000;
  gen.zipf_s = 0.8;
  gen.seed = 102;
  Dataset data = GenerateSyntheticCategorical(gen);
  const uint64_t k = std::max(GetParam(), data.MaxPointMultiplicity());

  SliceCoverCrawler eager(false);
  CrawlResult result = ExpectExactExtraction(&eager, data, k);
  const double n_over_k = CeilDiv(gen.n, k);
  double bound = 0;
  for (uint64_t u : gen.domain_sizes) {
    bound += static_cast<double>(u) +
             n_over_k * std::min(static_cast<double>(u), n_over_k);
  }
  EXPECT_LE(static_cast<double>(result.queries_issued), bound) << "k=" << k;
}

TEST_P(BoundsSweep, HybridWithinLemma9) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {8, 14};
  gen.num_numeric = 2;
  gen.n = 6000;
  gen.value_range = 700;
  gen.zipf_s = 0.8;
  gen.seed = 103;
  Dataset data = GenerateSyntheticMixed(gen);
  const uint64_t k = std::max(GetParam(), data.MaxPointMultiplicity());

  HybridCrawler crawler;
  CrawlResult result = ExpectExactExtraction(&crawler, data, k);
  // Lemma 9 (cat > 1): categorical part per Lemma 4 plus O((d-cat) n/k)
  // with the same alpha = 20, plus slack.
  const double n_over_k = CeilDiv(gen.n, k);
  double bound = 20.0 * 2.0 * n_over_k + 8.0 * 2 + 8.0;
  for (uint64_t u : gen.domain_sizes) {
    bound += static_cast<double>(u) +
             n_over_k * std::min(static_cast<double>(u), n_over_k);
  }
  EXPECT_LE(static_cast<double>(result.queries_issued), bound) << "k=" << k;
}

TEST_P(BoundsSweep, LazyNeverExceedsLemma4Either) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {10, 18, 26};
  gen.n = 6000;
  gen.zipf_s = 0.8;
  gen.seed = 104;
  Dataset data = GenerateSyntheticCategorical(gen);
  const uint64_t k = std::max(GetParam(), data.MaxPointMultiplicity());

  SliceCoverCrawler lazy(true);
  CrawlResult result = ExpectExactExtraction(&lazy, data, k);
  const double n_over_k = CeilDiv(gen.n, k);
  double bound = 0;
  for (uint64_t u : gen.domain_sizes) {
    bound += static_cast<double>(u) +
             n_over_k * std::min(static_cast<double>(u), n_over_k);
  }
  EXPECT_LE(static_cast<double>(result.queries_issued), bound) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(KSweep, BoundsSweep,
                         ::testing::Values(8, 16, 32, 64, 128, 256),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "k" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace hdc
