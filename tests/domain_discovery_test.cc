// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/domain_discovery.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/binary_shrink.h"
#include "gen/synthetic.h"
#include "server/decorators.h"
#include "server/local_server.h"

namespace hdc {
namespace {

std::shared_ptr<Dataset> UnboundedNumericData(uint64_t seed, size_t n,
                                              Value lo, Value hi) {
  SchemaPtr schema = Schema::Numeric(2);
  auto data = std::make_shared<Dataset>(schema);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    data->Add(Tuple({rng.UniformInt(lo, hi), rng.UniformInt(lo, hi)}));
  }
  return data;
}

std::pair<Value, Value> TrueBounds(const Dataset& data, size_t attr) {
  Value lo = data.tuple(0)[attr], hi = lo;
  for (const Tuple& t : data.tuples()) {
    lo = std::min(lo, t[attr]);
    hi = std::max(hi, t[attr]);
  }
  return {lo, hi};
}

TEST(DomainDiscoveryTest, FindsExactObservedBounds) {
  auto data = UnboundedNumericData(91, 500, -12345, 987654);
  LocalServer server(data, /*k=*/32);
  for (size_t attr = 0; attr < 2; ++attr) {
    DiscoveredBounds bounds;
    ASSERT_TRUE(DiscoverNumericBounds(&server, attr, &bounds).ok());
    auto [true_lo, true_hi] = TrueBounds(*data, attr);
    EXPECT_FALSE(bounds.empty);
    EXPECT_EQ(bounds.lo, true_lo) << "attr " << attr;
    EXPECT_EQ(bounds.hi, true_hi) << "attr " << attr;
    // O(log spread): generously under 150 probes for a ~10^6 spread.
    EXPECT_LT(bounds.queries, 150u);
  }
}

TEST(DomainDiscoveryTest, NegativeOnlyValues) {
  SchemaPtr schema = Schema::Numeric(1);
  auto data = std::make_shared<Dataset>(schema);
  for (Value v : {-1000000, -500, -3}) data->Add(Tuple({v}));
  LocalServer server(data, 2);
  DiscoveredBounds bounds;
  ASSERT_TRUE(DiscoverNumericBounds(&server, 0, &bounds).ok());
  EXPECT_EQ(bounds.lo, -1000000);
  EXPECT_EQ(bounds.hi, -3);
}

TEST(DomainDiscoveryTest, SingleValueColumn) {
  SchemaPtr schema = Schema::Numeric(1);
  auto data = std::make_shared<Dataset>(schema);
  for (int i = 0; i < 5; ++i) data->Add(Tuple({42}));
  LocalServer server(data, 8);
  DiscoveredBounds bounds;
  ASSERT_TRUE(DiscoverNumericBounds(&server, 0, &bounds).ok());
  EXPECT_EQ(bounds.lo, 42);
  EXPECT_EQ(bounds.hi, 42);
}

TEST(DomainDiscoveryTest, EmptyDatabase) {
  auto data = std::make_shared<Dataset>(Schema::Numeric(1));
  LocalServer server(data, 8);
  DiscoveredBounds bounds;
  ASSERT_TRUE(DiscoverNumericBounds(&server, 0, &bounds).ok());
  EXPECT_TRUE(bounds.empty);
  EXPECT_EQ(bounds.queries, 1u);
}

TEST(DomainDiscoveryTest, RejectsCategoricalAttribute) {
  SchemaPtr schema = Schema::Categorical({4});
  auto data = std::make_shared<Dataset>(schema);
  data->Add(Tuple({1}));
  LocalServer server(data, 8);
  DiscoveredBounds bounds;
  EXPECT_TRUE(
      DiscoverNumericBounds(&server, 0, &bounds).IsInvalidArgument());
}

TEST(DomainDiscoveryTest, BoundedSchemaCoversAllTuples) {
  auto data = UnboundedNumericData(92, 400, 0, 100000);
  LocalServer server(data, /*k=*/16);
  SchemaPtr bounded;
  uint64_t queries = 0;
  ASSERT_TRUE(DiscoverBoundedSchema(&server, &bounded, &queries).ok());
  EXPECT_GT(queries, 0u);
  EXPECT_TRUE(bounded->CompatibleWith(*data->schema()));
  for (const Tuple& t : data->tuples()) {
    for (size_t a = 0; a < 2; ++a) {
      EXPECT_TRUE(bounded->attribute(a).ValueInDomain(t[a]));
    }
  }
}

TEST(DomainDiscoveryTest, EnablesBinaryShrinkOnUnboundedServer) {
  auto data = UnboundedNumericData(93, 600, -5000, 5000);
  const uint64_t k = std::max<uint64_t>(16, data->MaxPointMultiplicity());
  LocalServer server(data, k);

  // binary-shrink refuses the raw (unbounded) server...
  BinaryShrink crawler;
  CrawlResult direct = crawler.Crawl(&server);
  EXPECT_TRUE(direct.status.IsInvalidArgument());

  // ...but runs after domain discovery + schema override.
  SchemaPtr bounded;
  ASSERT_TRUE(DiscoverBoundedSchema(&server, &bounded).ok());
  SchemaOverrideServer bounded_server(&server, bounded);
  CrawlResult result = crawler.Crawl(&bounded_server);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.extracted.size(), data->size());
  EXPECT_TRUE(Dataset::MultisetEquals(
      result.extracted, Dataset(bounded, data->tuples())));
}

}  // namespace
}  // namespace hdc
