// Copyright (c) hdc authors. Apache-2.0 license.
//
// End-to-end crawls of the three paper-scale datasets, mirroring the setup
// of Section 6 (local server, random tuple priorities). These are the
// heavyweight tests: full cardinalities, multiple algorithms, exact
// multiset verification.
#include <gtest/gtest.h>

#include <memory>

#include "core/crawlers.h"
#include "gen/adult_gen.h"
#include "gen/nsf_gen.h"
#include "gen/yahoo_gen.h"
#include "server/local_server.h"

namespace hdc {
namespace {

TEST(IntegrationTest, AdultNumericRankShrinkAtK256) {
  auto data = std::make_shared<Dataset>(GenerateAdultNumeric());
  LocalServer server(data, /*k=*/256);
  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  // Lemma 2 with alpha = 20: 20 * 6 * 45222 / 256 ~ 21k; real data costs
  // far less, but assert at least the proven envelope.
  EXPECT_LE(result.queries_issued, 22000u);
  EXPECT_GE(result.queries_issued,
            data->size() / 256);  // trivial n/k lower bound
}

TEST(IntegrationTest, NsfLazySliceCoverAtK256) {
  auto data = std::make_shared<Dataset>(GenerateNsf());
  LocalServer server(data, /*k=*/256);
  SliceCoverCrawler crawler(/*lazy=*/true);
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
}

TEST(IntegrationTest, NsfDfsAtK1024) {
  auto data = std::make_shared<Dataset>(GenerateNsf());
  LocalServer server(data, /*k=*/1024);
  DfsCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
}

TEST(IntegrationTest, YahooHybridAtK256) {
  auto data = std::make_shared<Dataset>(GenerateYahoo());
  LocalServer server(data, /*k=*/256);
  HybridCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
}

TEST(IntegrationTest, YahooUnsolvableAtK64) {
  // Section 6: "there is no reported value for Yahoo at k = 64 because it
  // has more than 64 identical tuples".
  auto data = std::make_shared<Dataset>(GenerateYahoo());
  LocalServer server(data, /*k=*/64);
  EXPECT_FALSE(server.IsCrawlable());
  HybridCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  EXPECT_TRUE(result.status.IsUnsolvable()) << result.status.ToString();
}

TEST(IntegrationTest, AdultHybridAtK64) {
  auto data = std::make_shared<Dataset>(GenerateAdult());
  LocalServer server(data, /*k=*/64);
  ASSERT_TRUE(server.IsCrawlable());
  HybridCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
}

TEST(IntegrationTest, FactoryCrawlsEachDataset) {
  struct Case {
    Dataset data;
    uint64_t k;
  };
  AdultGeneratorOptions small_adult;
  small_adult.num_tuples = 8000;
  std::vector<Case> cases;
  cases.push_back({GenerateAdultNumeric(small_adult), 128});
  cases.push_back({GenerateAdult(small_adult), 128});
  for (auto& c : cases) {
    auto data = std::make_shared<Dataset>(c.data);
    LocalServer server(data, c.k);
    auto crawler = MakeOptimalCrawler(*data->schema());
    CrawlResult result = crawler->Crawl(&server);
    ASSERT_TRUE(result.status.ok())
        << crawler->name() << ": " << result.status.ToString();
    EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  }
}

TEST(IntegrationTest, ProgressivenessIsRoughlyLinear) {
  // Figure 13's observation: tuples are output roughly in proportion to
  // queries spent. Assert a loose version: at half the queries, at least a
  // quarter of the rows have been seen.
  auto data = std::make_shared<Dataset>(GenerateYahoo());
  LocalServer server(data, /*k=*/256);
  HybridCrawler crawler;
  CrawlOptions options;
  options.record_trace = true;
  CrawlResult result = crawler.Crawl(&server, options);
  ASSERT_TRUE(result.status.ok());
  ASSERT_FALSE(result.trace.empty());
  const TraceEntry& mid = result.trace[result.trace.size() / 2];
  EXPECT_GE(mid.rows_seen, data->size() / 4);
}

}  // namespace
}  // namespace hdc
