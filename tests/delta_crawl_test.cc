// Copyright (c) hdc authors. Apache-2.0 license.
//
// Delta crawl end-to-end: for every mutation script the emitted
// insert/delete/update sets must exactly equal the diff a full re-crawl
// would compute, while billing only the changed subspace. Also covers the
// convergence loop under mid-crawl scheduled mutations and the crawl
// record save/load codec (including corruption rejection).
#include "core/delta_crawl.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "server/answer_cache.h"
#include "server/mutating_server.h"

namespace hdc {
namespace {

std::shared_ptr<const Dataset> TinyData() {
  SchemaPtr schema = Schema::NumericBounded({{0, 100}});
  auto d = std::make_shared<Dataset>(schema);
  for (Value v = 0; v < 20; ++v) d->Add(Tuple({v * 5}));
  return d;
}

/// The server's live rows and a record's extraction as comparable id->value
/// maps.
void ExpectMatchesServer(const CrawlRecord& record,
                         const MutatingLocalServer& server) {
  auto extracted = record.Extraction();
  std::sort(extracted.begin(), extracted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const auto rows = server.Rows();
  ASSERT_EQ(extracted.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(extracted[i].first, rows[i].first);
    EXPECT_EQ(extracted[i].second, rows[i].second);
  }
}

/// Ground truth: crawl the current state from scratch and diff against
/// `prior` — the delta crawl must emit exactly this.
CrawlDelta ReferenceDelta(MutatingLocalServer* server,
                          const CrawlRecord& prior) {
  CrawlRecord full;
  EXPECT_TRUE(BuildCrawlRecord(server, &full).ok());
  return DiffRecords(prior, full);
}

void ExpectSameDelta(const CrawlDelta& expected, const CrawlDelta& actual) {
  ASSERT_EQ(expected.inserted.size(), actual.inserted.size());
  ASSERT_EQ(expected.deleted.size(), actual.deleted.size());
  ASSERT_EQ(expected.updated.size(), actual.updated.size());
  for (size_t i = 0; i < expected.inserted.size(); ++i) {
    EXPECT_EQ(expected.inserted[i].hidden_id, actual.inserted[i].hidden_id);
    EXPECT_EQ(expected.inserted[i].tuple, actual.inserted[i].tuple);
  }
  for (size_t i = 0; i < expected.deleted.size(); ++i) {
    EXPECT_EQ(expected.deleted[i].hidden_id, actual.deleted[i].hidden_id);
    EXPECT_EQ(expected.deleted[i].tuple, actual.deleted[i].tuple);
  }
  for (size_t i = 0; i < expected.updated.size(); ++i) {
    EXPECT_EQ(expected.updated[i].hidden_id, actual.updated[i].hidden_id);
    EXPECT_EQ(expected.updated[i].before, actual.updated[i].before);
    EXPECT_EQ(expected.updated[i].after, actual.updated[i].after);
  }
}

TEST(BuildCrawlRecordTest, ExtractsEverythingIntoResolvedRegions) {
  MutatingLocalServer server(TinyData(), 4);
  CrawlRecord record;
  DeltaCrawlStats stats;
  ASSERT_TRUE(BuildCrawlRecord(&server, &record, &stats).ok());
  EXPECT_EQ(record.db_version, 1u);
  EXPECT_EQ(record.TupleCount(), 20u);
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_GT(stats.billed_queries, 0u);
  EXPECT_EQ(record.queries_spent, stats.billed_queries);
  for (const CrawlRecordRegion& region : record.regions) {
    EXPECT_FALSE(region.answer.overflow);
    EXPECT_EQ(region.content_hash, HashResponse(region.answer));
  }
  ExpectMatchesServer(record, server);
}

TEST(DeltaCrawlTest, UnchangedDatabaseCostsZeroQueries) {
  MutatingLocalServer server(TinyData(), 4);
  CrawlRecord prior;
  ASSERT_TRUE(BuildCrawlRecord(&server, &prior).ok());

  CrawlRecord updated;
  CrawlDelta delta;
  DeltaCrawlStats stats;
  ASSERT_TRUE(DeltaCrawl(&server, prior, &updated, &delta, &stats).ok());
  // Version check proves every region fresh: no server contact at all.
  EXPECT_EQ(stats.billed_queries, 0u);
  EXPECT_EQ(stats.cheap_revalidations, 0u);
  EXPECT_EQ(stats.cache_hits, prior.regions.size());
  EXPECT_TRUE(delta.empty());
  ExpectMatchesServer(updated, server);
}

TEST(DeltaCrawlTest, EmitsExactInsertDeleteUpdateSets) {
  struct Script {
    const char* name;
    std::vector<Mutation> burst;
  };
  const std::vector<Script> scripts = {
      {"insert", {Mutation::Insert(Tuple({7})), Mutation::Insert(Tuple({93}))}},
      {"delete", {Mutation::Delete(3), Mutation::Delete(11)}},
      {"update-in-place", {Mutation::Update(4, Tuple({21}))}},
      {"cross-region-move", {Mutation::Update(2, Tuple({99}))}},
      {"mixed",
       {Mutation::Insert(Tuple({50})), Mutation::Delete(0),
        Mutation::Update(19, Tuple({1}))}},
  };
  for (const Script& script : scripts) {
    SCOPED_TRACE(script.name);
    MutatingLocalServer server(TinyData(), 4);
    CrawlRecord prior;
    ASSERT_TRUE(BuildCrawlRecord(&server, &prior).ok());
    ASSERT_TRUE(server.Apply(script.burst).ok());

    // Reference first: BuildCrawlRecord and DeltaCrawl see the same frozen
    // post-mutation state, so order does not matter.
    const CrawlDelta expected = ReferenceDelta(&server, prior);

    CrawlRecord updated;
    CrawlDelta delta;
    DeltaCrawlStats stats;
    ASSERT_TRUE(DeltaCrawl(&server, prior, &updated, &delta, &stats).ok());
    ExpectSameDelta(expected, delta);
    ExpectMatchesServer(updated, server);
    EXPECT_EQ(updated.db_version, server.db_version());
    // The incremental pass must be cheaper than the full re-crawl it
    // replaces (the bench quantifies by how much).
    EXPECT_LT(stats.billed_queries, prior.queries_spent);
  }
}

TEST(DeltaCrawlTest, ConvergesWhenMutationLandsMidCrawl) {
  MutatingLocalServer server(TinyData(), 4);
  CrawlRecord prior;
  ASSERT_TRUE(BuildCrawlRecord(&server, &prior).ok());

  // One applied burst forces the delta pass to actually issue queries;
  // the scheduled burst then fires in the middle of that sweep.
  ASSERT_TRUE(server.Apply({Mutation::Insert(Tuple({33}))}).ok());
  server.ScheduleAt(server.queries_served() + 3,
                    {Mutation::Insert(Tuple({66})), Mutation::Delete(1)});

  CrawlRecord updated;
  CrawlDelta delta;
  DeltaCrawlStats stats;
  ASSERT_TRUE(DeltaCrawl(&server, prior, &updated, &delta, &stats).ok());
  // The mid-crawl version bump forces at least one extra pass, and the
  // final record is a consistent snapshot of the post-burst state.
  EXPECT_GE(stats.passes, 2u);
  EXPECT_EQ(updated.db_version, server.db_version());
  ExpectMatchesServer(updated, server);
  // Both bursts are visible in the emitted delta.
  ASSERT_EQ(delta.inserted.size(), 2u);
  ASSERT_EQ(delta.deleted.size(), 1u);
  EXPECT_EQ(delta.deleted[0].hidden_id, 1u);
  EXPECT_TRUE(delta.updated.empty());
}

TEST(DeltaCrawlTest, RejectsEmptyOrIncompatiblePrior) {
  MutatingLocalServer server(TinyData(), 4);
  CrawlRecord empty;
  CrawlRecord updated;
  CrawlDelta delta;
  EXPECT_TRUE(
      DeltaCrawl(&server, empty, &updated, &delta).IsInvalidArgument());

  CrawlRecord other;
  MutatingLocalServer two_attrs(
      [] {
        SchemaPtr schema = Schema::NumericBounded({{0, 10}, {0, 10}});
        auto d = std::make_shared<Dataset>(schema);
        d->Add(Tuple({1, 2}));
        return d;
      }(),
      4);
  ASSERT_TRUE(BuildCrawlRecord(&two_attrs, &other).ok());
  EXPECT_TRUE(
      DeltaCrawl(&server, other, &updated, &delta).IsInvalidArgument());
}

TEST(MutatingServerTest, RejectsTuplesOutsideTheSchemaDomains) {
  // A row outside the schema's domains would be unreachable by any
  // rectangle query, so no crawl — full or delta — could ever extract it.
  SchemaPtr schema = Schema::Make({AttributeSpec::Categorical("C", 3),
                                   AttributeSpec::NumericBounded("N", 0, 10)});
  auto d = std::make_shared<Dataset>(schema);
  d->Add(Tuple({1, 5}));
  MutatingLocalServer server(std::shared_ptr<const Dataset>(d), 4);

  // Categorical values are 1-based: 0 and 4 are both outside dom(C)={1,2,3}.
  EXPECT_TRUE(server.Apply({Mutation::Insert(Tuple({0, 5}))})
                  .IsInvalidArgument());
  EXPECT_TRUE(server.Apply({Mutation::Insert(Tuple({4, 5}))})
                  .IsInvalidArgument());
  EXPECT_TRUE(server.Apply({Mutation::Update(0, Tuple({1, 11}))})
                  .IsInvalidArgument());
  // Nothing was applied: the version never moved.
  EXPECT_EQ(server.db_version(), 1u);
  ASSERT_TRUE(server.Apply({Mutation::Insert(Tuple({3, 10}))}).ok());
  EXPECT_EQ(server.db_version(), 2u);
}

TEST(BuildCrawlRecordTest, OverflowingPointIsUnsolvable) {
  SchemaPtr schema = Schema::NumericBounded({{0, 10}});
  auto d = std::make_shared<Dataset>(schema);
  for (int i = 0; i < 3; ++i) d->Add(Tuple({5}));
  MutatingLocalServer server(std::shared_ptr<const Dataset>(d), 2);
  CrawlRecord record;
  EXPECT_TRUE(BuildCrawlRecord(&server, &record).IsUnsolvable());
}

TEST(CrawlRecordCodecTest, SaveLoadRoundtrips) {
  MutatingLocalServer server(TinyData(), 4);
  CrawlRecord record;
  ASSERT_TRUE(BuildCrawlRecord(&server, &record).ok());
  ASSERT_TRUE(server.Apply({Mutation::Insert(Tuple({42}))}).ok());
  CrawlRecord updated;
  CrawlDelta delta;
  ASSERT_TRUE(DeltaCrawl(&server, record, &updated, &delta).ok());

  std::ostringstream out;
  ASSERT_TRUE(SaveCrawlRecord(updated, &out).ok());

  std::istringstream in(out.str());
  CrawlRecord loaded;
  ASSERT_TRUE(LoadCrawlRecord(&in, updated.schema, &loaded).ok());
  EXPECT_EQ(loaded.db_version, updated.db_version);
  EXPECT_EQ(loaded.queries_spent, updated.queries_spent);
  ASSERT_EQ(loaded.regions.size(), updated.regions.size());
  for (size_t i = 0; i < loaded.regions.size(); ++i) {
    EXPECT_EQ(loaded.regions[i].rectangle, updated.regions[i].rectangle);
    EXPECT_EQ(loaded.regions[i].content_hash,
              updated.regions[i].content_hash);
  }
  // A loaded record drives a delta crawl exactly like the in-memory one.
  EXPECT_TRUE(DiffRecords(updated, loaded).empty());
  CrawlRecord recrawled;
  CrawlDelta nothing;
  DeltaCrawlStats stats;
  ASSERT_TRUE(
      DeltaCrawl(&server, loaded, &recrawled, &nothing, &stats).ok());
  EXPECT_EQ(stats.billed_queries, 0u);
  EXPECT_TRUE(nothing.empty());
}

TEST(CrawlRecordCodecTest, RejectsCorruptionAndWrongSchema) {
  MutatingLocalServer server(TinyData(), 4);
  CrawlRecord record;
  ASSERT_TRUE(BuildCrawlRecord(&server, &record).ok());
  std::ostringstream out;
  ASSERT_TRUE(SaveCrawlRecord(record, &out).ok());
  const std::string text = out.str();

  {
    // Flip one tuple value: the recorded content hash must catch it.
    std::string corrupt = text;
    const size_t pos = corrupt.rfind("\n10 ");
    ASSERT_NE(pos, std::string::npos);
    corrupt[pos + 1] = '9';
    std::istringstream in(corrupt);
    CrawlRecord loaded;
    EXPECT_TRUE(LoadCrawlRecord(&in, record.schema, &loaded)
                    .IsInvalidArgument());
  }
  {
    // A different schema is refused up front.
    std::istringstream in(text);
    CrawlRecord loaded;
    EXPECT_TRUE(
        LoadCrawlRecord(&in, Schema::NumericBounded({{0, 100}, {0, 1}}),
                        &loaded)
            .IsInvalidArgument());
  }
  {
    std::istringstream in("not a record\n");
    CrawlRecord loaded;
    EXPECT_TRUE(LoadCrawlRecord(&in, record.schema, &loaded)
                    .IsInvalidArgument());
  }
}

}  // namespace
}  // namespace hdc
