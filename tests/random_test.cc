// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hdc {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64HitsAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformU64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, NormalIntClampsToRange) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NormalInt(50.0, 30.0, 40, 60);
    EXPECT_GE(v, 40);
    EXPECT_LE(v, 60);
  }
}

TEST(RngTest, NormalIntMeanApproximation) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    sum += static_cast<double>(rng.NormalInt(100.0, 10.0, 0, 200));
  }
  EXPECT_NEAR(sum / 20000.0, 100.0, 1.0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(31);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(1);
  ZipfDistribution zipf(10, 1.0);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = zipf.Sample(&rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 10u);
  }
}

TEST(ZipfTest, SkewFavorsSmallValues) {
  Rng rng(2);
  ZipfDistribution zipf(100, 1.2);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[1], 10 * counts[50]);
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  Rng rng(3);
  ZipfDistribution zipf(4, 0.0);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(&rng)];
  for (int v = 1; v <= 4; ++v) {
    EXPECT_NEAR(counts[v] / 40000.0, 0.25, 0.02);
  }
}

TEST(ZipfTest, SingletonDomain) {
  Rng rng(4);
  ZipfDistribution zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 1u);
}

TEST(DiscreteDistributionTest, RespectsWeights) {
  Rng rng(5);
  DiscreteDistribution dist({0.5, 0.0, 0.5});
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) ++counts[dist.Sample(&rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(counts[2] / 10000.0, 0.5, 0.03);
}

TEST(DiscreteDistributionTest, SingleBucket) {
  Rng rng(6);
  DiscreteDistribution dist({3.0});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dist.Sample(&rng), 0u);
}

}  // namespace
}  // namespace hdc
