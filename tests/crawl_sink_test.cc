// Copyright (c) hdc authors. Apache-2.0 license.
//
// Streaming extraction: sinks observe every confirmed tuple exactly once,
// the bounded queue paces the producer, and materialize=false keeps the
// crawl's memory constant while losing nothing.
#include "core/crawl_sink.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/local_server.h"

namespace hdc {
namespace {

Dataset SmallCategorical(uint64_t seed) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {5, 6, 4};
  gen.n = 400;
  gen.seed = seed;
  return GenerateSyntheticCategorical(gen);
}

TEST(CrawlSinkTest, SinkSeesTheWholeExtractionExactlyOnce) {
  Dataset data = SmallCategorical(21);
  auto shared = std::make_shared<Dataset>(data);
  LocalServer server(shared,
                     std::max<uint64_t>(8, data.MaxPointMultiplicity()));

  Dataset streamed(data.schema());
  CallbackSink sink([&streamed](const Tuple& t) { streamed.Add(t); });
  CrawlOptions options;
  options.sink = &sink;

  DfsCrawler crawler;
  CrawlResult result = crawler.Crawl(&server, options);
  ASSERT_TRUE(result.status.ok());
  // The sink received the same multiset the materialized bag holds.
  EXPECT_TRUE(Dataset::MultisetEquals(streamed, result.extracted));
  EXPECT_TRUE(Dataset::MultisetEquals(streamed, data));
}

TEST(CrawlSinkTest, UnmaterializedCrawlStreamsEverythingAndKeepsNothing) {
  Dataset data = SmallCategorical(22);
  auto shared = std::make_shared<Dataset>(data);
  LocalServer server(shared,
                     std::max<uint64_t>(8, data.MaxPointMultiplicity()));

  Dataset streamed(data.schema());
  CallbackSink sink([&streamed](const Tuple& t) { streamed.Add(t); });
  CrawlOptions options;
  options.sink = &sink;
  options.materialize = false;

  SliceCoverCrawler crawler(/*lazy=*/true);
  CrawlResult result = crawler.Crawl(&server, options);
  ASSERT_TRUE(result.status.ok());
  // Constant-memory mode: the in-memory bag stays empty...
  EXPECT_EQ(result.extracted.size(), 0u);
  // ...but the stream carried the complete extraction, and the state's
  // counter still reports it.
  EXPECT_TRUE(Dataset::MultisetEquals(streamed, data));
  EXPECT_EQ(result.tuples_collected, data.size());
}

TEST(CrawlSinkTest, BoundedQueueDrainsInOrderAfterClose) {
  BoundedQueueSink sink(4);
  for (Value v : {1, 2, 3}) sink.Append(Tuple({v}));
  sink.Close();
  Tuple t;
  ASSERT_TRUE(sink.Pop(&t));
  EXPECT_EQ(t[0], 1);
  ASSERT_TRUE(sink.Pop(&t));
  EXPECT_EQ(t[0], 2);
  ASSERT_TRUE(sink.Pop(&t));
  EXPECT_EQ(t[0], 3);
  EXPECT_FALSE(sink.Pop(&t));  // closed and drained
  EXPECT_FALSE(sink.Pop(&t));  // stays false
}

TEST(CrawlSinkTest, BoundedQueueAppliesBackpressure) {
  // Producer tries to push 2*capacity tuples; it can only run ahead of the
  // consumer by the queue capacity, so with a stalled consumer it must
  // block rather than buffer.
  constexpr size_t kCapacity = 3;
  constexpr size_t kTotal = 64;
  BoundedQueueSink sink(kCapacity);
  std::atomic<size_t> pushed{0};

  std::thread producer([&] {
    for (size_t i = 0; i < kTotal; ++i) {
      sink.Append(Tuple({static_cast<Value>(i)}));
      pushed.fetch_add(1);
    }
    sink.Close();
  });

  // Consume slowly and verify the producer never ran further ahead than
  // capacity allows (popped + capacity + the one slot freed this instant).
  size_t popped = 0;
  Tuple t;
  while (sink.Pop(&t)) {
    EXPECT_EQ(static_cast<size_t>(t[0]), popped);  // FIFO order
    ++popped;
    EXPECT_LE(pushed.load(), popped + kCapacity + 1);
  }
  producer.join();
  EXPECT_EQ(popped, kTotal);
  EXPECT_EQ(pushed.load(), kTotal);
}

TEST(CrawlSinkTest, QueueBridgesCrawlToConsumerThread) {
  // End-to-end shape of the streaming pipeline: the crawl produces into a
  // small bounded queue while a consumer thread drains it into its own
  // dataset; with materialize off, memory in flight is at most `capacity`.
  Dataset data = SmallCategorical(23);
  auto shared = std::make_shared<Dataset>(data);
  LocalServer server(shared,
                     std::max<uint64_t>(8, data.MaxPointMultiplicity()));

  BoundedQueueSink sink(8);
  Dataset drained(data.schema());
  std::thread consumer([&] {
    Tuple t;
    while (sink.Pop(&t)) drained.Add(t);
  });

  CrawlOptions options;
  options.sink = &sink;
  options.materialize = false;
  HybridCrawler crawler;
  CrawlResult result = crawler.Crawl(&server, options);
  sink.Close();
  consumer.join();

  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.extracted.size(), 0u);
  EXPECT_TRUE(Dataset::MultisetEquals(drained, data));
}

}  // namespace
}  // namespace hdc
