// Copyright (c) hdc authors. Apache-2.0 license.
//
// The two exploration-order extension points: rank-shrink's split-attribute
// strategy and the slice engine's categorical traversal order.
#include <gtest/gtest.h>

#include <memory>

#include "core/hybrid.h"
#include "core/rank_shrink.h"
#include "core/slice_cover.h"
#include "gen/nsf_gen.h"
#include "gen/synthetic.h"
#include "server/local_server.h"
#include "test_util.h"

namespace hdc {
namespace {

using testing_util::ExpectExactExtraction;

TEST(SplitStrategyTest, ChooseSplitAttributeFirstNonExhausted) {
  SchemaPtr schema = Schema::Numeric(3);
  Query q = Query::FullSpace(schema).WithNumericRange(0, 5, 5);  // pin A1
  RankShrinkOptions options;  // default strategy
  std::vector<ReturnedTuple> returned = {{Tuple({5, 1, 9}), 0}};
  auto attr = ChooseSplitAttribute(q, returned, options);
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(*attr, 1u);
}

TEST(SplitStrategyTest, ChooseSplitAttributeMostDistinct) {
  SchemaPtr schema = Schema::Numeric(3);
  Query q = Query::FullSpace(schema);
  RankShrinkOptions options;
  options.attribute_strategy = SplitAttributeStrategy::kMostDistinctValues;
  // A1 constant, A2 two distinct, A3 three distinct -> pick A3 (index 2).
  std::vector<ReturnedTuple> returned = {{Tuple({7, 1, 10}), 0},
                                         {Tuple({7, 1, 20}), 1},
                                         {Tuple({7, 2, 30}), 2}};
  auto attr = ChooseSplitAttribute(q, returned, options);
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(*attr, 2u);
}

TEST(SplitStrategyTest, ChooseSplitAttributePointReturnsNull) {
  SchemaPtr schema = Schema::Numeric(2);
  Query q = Query::FullSpace(schema)
                .WithNumericRange(0, 3, 3)
                .WithNumericRange(1, 4, 4);
  std::vector<ReturnedTuple> returned = {{Tuple({3, 4}), 0}};
  EXPECT_FALSE(
      ChooseSplitAttribute(q, returned, RankShrinkOptions{}).has_value());
}

TEST(SplitStrategyTest, MostDistinctStrategyStaysExact) {
  SyntheticNumericOptions gen;
  gen.d = 3;
  gen.n = 1200;
  gen.value_range = 400;
  gen.value_skew = 0.5;
  gen.seed = 71;
  Dataset data = GenerateSyntheticNumeric(gen);
  const uint64_t k = std::max<uint64_t>(16, data.MaxPointMultiplicity());

  RankShrinkOptions options;
  options.attribute_strategy = SplitAttributeStrategy::kMostDistinctValues;
  RankShrink adaptive(options);
  ExpectExactExtraction(&adaptive, data, k);
}

TEST(SplitStrategyTest, AdaptiveHelpsWhenWideAttributeComesLast) {
  // A1 is a constant column; the paper's rule burns splits exhausting it
  // while the adaptive rule goes straight for the informative A2.
  SchemaPtr schema = Schema::NumericBounded({{0, 1000000}, {0, 1000000}});
  auto data = std::make_shared<Dataset>(schema);
  Rng rng(72);
  for (int i = 0; i < 4000; ++i) {
    data->Add(Tuple({500000, rng.UniformInt(0, 1000000)}));
  }
  const uint64_t k = 64;
  ASSERT_LE(data->MaxPointMultiplicity(), k);

  RankShrink paper_rule;
  CrawlResult paper_result = ExpectExactExtraction(&paper_rule, *data, k);

  RankShrinkOptions options;
  options.attribute_strategy = SplitAttributeStrategy::kMostDistinctValues;
  RankShrink adaptive(options);
  CrawlResult adaptive_result = ExpectExactExtraction(&adaptive, *data, k);

  EXPECT_LE(adaptive_result.queries_issued, paper_result.queries_issued);
}

TEST(CategoricalOrderTest, ResolveOrders) {
  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("Wide", 50),
      AttributeSpec::Numeric("N"),
      AttributeSpec::Categorical("Narrow", 3),
      AttributeSpec::Categorical("Mid", 10),
  });
  EXPECT_EQ(ResolveCategoricalOrder(*schema, CategoricalOrder::kSchemaOrder),
            (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(
      ResolveCategoricalOrder(*schema, CategoricalOrder::kNarrowestFirst),
      (std::vector<size_t>{2, 3, 0}));
  EXPECT_EQ(ResolveCategoricalOrder(*schema, CategoricalOrder::kWidestFirst),
            (std::vector<size_t>{0, 3, 2}));
}

TEST(CategoricalOrderTest, AllOrdersExtractExactly) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {12, 3, 25, 6};
  gen.n = 900;
  gen.zipf_s = 0.7;
  gen.seed = 73;
  Dataset data = GenerateSyntheticCategorical(gen);
  const uint64_t k = std::max<uint64_t>(16, data.MaxPointMultiplicity());

  for (CategoricalOrder order :
       {CategoricalOrder::kSchemaOrder, CategoricalOrder::kNarrowestFirst,
        CategoricalOrder::kWidestFirst}) {
    SliceCoverCrawler crawler(/*lazy=*/true, order);
    ExpectExactExtraction(&crawler, data, k);
  }
}

TEST(CategoricalOrderTest, NarrowFirstBeatsWideFirstOnNsfLikeData) {
  // The effect needs NSF-like depth: several correlated narrow attributes
  // whose tree stays heavy, plus wide thin ones. Putting the widest
  // attribute (PI-name, 29,042 values) first forces one slice query per
  // root child before any pruning can happen.
  auto data = std::make_shared<Dataset>(GenerateNsf());
  const uint64_t k = 256;
  ASSERT_LE(data->MaxPointMultiplicity(), k);

  SliceCoverCrawler narrow_first(true, CategoricalOrder::kNarrowestFirst);
  SliceCoverCrawler wide_first(true, CategoricalOrder::kWidestFirst);
  CrawlResult narrow_result = ExpectExactExtraction(&narrow_first, *data, k);
  CrawlResult wide_result = ExpectExactExtraction(&wide_first, *data, k);
  // The widest-first crawl must pay at least the PI-name domain in slice
  // queries; narrowest-first stays far below that.
  EXPECT_GE(wide_result.queries_issued, 29042u);
  EXPECT_LT(2 * narrow_result.queries_issued, wide_result.queries_issued);
}

TEST(CategoricalOrderTest, HybridhonorsOrderOption) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {30, 3};
  gen.num_numeric = 1;
  gen.n = 800;
  gen.value_range = 200;
  gen.seed = 75;
  Dataset data = GenerateSyntheticMixed(gen);
  const uint64_t k = std::max<uint64_t>(16, data.MaxPointMultiplicity());

  HybridOptions options;
  options.categorical_order = CategoricalOrder::kNarrowestFirst;
  HybridCrawler crawler(options);
  ExpectExactExtraction(&crawler, data, k);
}

}  // namespace
}  // namespace hdc
