// Copyright (c) hdc authors. Apache-2.0 license.
//
// End-to-end tests of the remote backend (net/): all six crawlers produce
// identical extractions and query counts over a RemoteServer loopback
// connection as over the in-process stack at batch sizes 1, 4 and auto;
// transport faults — connection drop mid-batch, malformed frames, server
// restart — surface as typed errors, never lose answered work, and the
// crawl resumes through the existing checkpoint path.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "net/remote_server.h"
#include "net/service_endpoint.h"
#include "server/crawl_service.h"
#include "server/decorators.h"
#include "server/local_server.h"
#include "util/clock.h"

namespace hdc {
namespace {

struct TransportCase {
  std::string label;
  std::function<std::unique_ptr<Crawler>()> make_crawler;
  std::function<Dataset()> make_data;
  uint64_t k;
};

std::vector<TransportCase> MakeCases() {
  std::vector<TransportCase> cases;
  cases.push_back(
      {"rank_shrink", [] { return std::make_unique<RankShrink>(); },
       [] {
         SyntheticNumericOptions gen;
         gen.d = 2;
         gen.n = 400;
         gen.value_range = 250;
         gen.seed = 61;
         return GenerateSyntheticNumeric(gen);
       },
       8});
  cases.push_back(
      {"binary_shrink", [] { return std::make_unique<BinaryShrink>(); },
       [] {
         SyntheticNumericOptions gen;
         gen.d = 2;
         gen.n = 250;
         gen.value_range = 128;
         gen.seed = 62;
         return GenerateSyntheticNumeric(gen);
       },
       8});
  cases.push_back(
      {"dfs", [] { return std::make_unique<DfsCrawler>(); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 5, 4};
         gen.n = 400;
         gen.seed = 63;
         return GenerateSyntheticCategorical(gen);
       },
       8});
  cases.push_back(
      {"slice_cover",
       [] { return std::make_unique<SliceCoverCrawler>(false); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 5, 4};
         gen.n = 400;
         gen.seed = 64;
         return GenerateSyntheticCategorical(gen);
       },
       8});
  cases.push_back(
      {"lazy_slice_cover",
       [] { return std::make_unique<SliceCoverCrawler>(true); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 5, 4};
         gen.n = 400;
         gen.seed = 65;
         return GenerateSyntheticCategorical(gen);
       },
       8});
  cases.push_back(
      {"hybrid", [] { return std::make_unique<HybridCrawler>(); },
       [] {
         SyntheticMixedOptions gen;
         gen.domain_sizes = {4, 5};
         gen.num_numeric = 1;
         gen.n = 400;
         gen.value_range = 100;
         gen.seed = 66;
         return GenerateSyntheticMixed(gen);
       },
       8});
  return cases;
}

/// A live service + endpoint + fresh clients over one dataset.
class RemoteStack {
 public:
  RemoteStack(std::shared_ptr<const Dataset> dataset, uint64_t k,
              net::ServiceEndpointOptions endpoint_options = {},
              unsigned max_parallelism = 2) {
    CrawlServiceOptions options;
    options.max_parallelism = max_parallelism;
    service_ =
        std::make_unique<CrawlService>(std::move(dataset), k, nullptr,
                                       options);
    endpoint_ = std::make_unique<net::ServiceEndpoint>(service_.get(),
                                                       endpoint_options);
    Status s = endpoint_->Start();
    HDC_CHECK_OK(s);
  }

  std::unique_ptr<net::RemoteServer> Connect(
      net::RemoteServerOptions options = {}) {
    std::unique_ptr<net::RemoteServer> client;
    Status s = net::RemoteServer::Connect("127.0.0.1", endpoint_->port(),
                                          options, &client);
    HDC_CHECK_OK(s);
    return client;
  }

  CrawlService* service() { return service_.get(); }
  net::ServiceEndpoint* endpoint() { return endpoint_.get(); }

 private:
  std::unique_ptr<CrawlService> service_;
  std::unique_ptr<net::ServiceEndpoint> endpoint_;
};

// --- equivalence: six crawlers, batch sizes 1 / 4 / auto --------------------

TEST(RemoteEquivalenceTest, AllSixCrawlersMatchInProcessAtEveryBatchSize) {
  for (const TransportCase& test_case : MakeCases()) {
    SCOPED_TRACE(test_case.label);
    auto data = std::make_shared<const Dataset>(test_case.make_data());
    const uint64_t k =
        std::max<uint64_t>(test_case.k, data->MaxPointMultiplicity());

    // In-process ground truth: the classic sequential conversation.
    LocalServer local(data, k);
    auto crawler = test_case.make_crawler();
    CrawlResult truth = crawler->Crawl(&local);
    ASSERT_TRUE(truth.status.ok()) << truth.status.ToString();
    ASSERT_TRUE(Dataset::MultisetEquals(truth.extracted, *data));

    RemoteStack stack(data, k);
    for (uint32_t batch_size : {1u, 4u, 0u}) {
      SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
      auto client = stack.Connect();
      CrawlOptions options;
      options.batch_size = batch_size;
      auto remote_crawler = test_case.make_crawler();
      CrawlResult remote = remote_crawler->Crawl(client.get(), options);
      ASSERT_TRUE(remote.status.ok()) << remote.status.ToString();
      EXPECT_TRUE(Dataset::MultisetEquals(remote.extracted, truth.extracted))
          << "remote extraction differs from in-process";
      EXPECT_EQ(remote.queries_issued, truth.queries_issued)
          << "the transport must not change the paper's cost metric";
      EXPECT_EQ(remote.rows_seen, truth.rows_seen);
    }
  }
}

// --- fault: connection dropped mid-batch ------------------------------------

TEST(RemoteFaultTest, MidBatchDropYieldsTypedErrorAndValidPrefix) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {8, 4};
  gen.n = 300;
  gen.seed = 71;
  auto data = std::make_shared<const Dataset>(
      GenerateSyntheticCategorical(gen));

  net::ServiceEndpointOptions faulty;
  faulty.drop_connection_after_responses = 5;
  RemoteStack stack(data, /*k=*/8, faulty);
  auto client = stack.Connect();

  // Eight slice queries; the connection dies after answer #5.
  std::vector<Query> batch;
  for (Value c = 1; c <= 8; ++c) {
    batch.push_back(
        Query::FullSpace(client->schema()).WithCategoricalEquals(0, c));
  }
  std::vector<Response> responses;
  Status s = client->IssueBatch(batch, &responses);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  ASSERT_EQ(responses.size(), 5u)
      << "the answered prefix must survive the drop";
  EXPECT_TRUE(client->disconnected());

  // The prefix holds real answers: cross-check against in-process truth.
  LocalServer reference(data, 8);
  for (size_t i = 0; i < responses.size(); ++i) {
    Response want;
    ASSERT_TRUE(reference.Issue(batch[i], &want).ok());
    ASSERT_EQ(responses[i].size(), want.size());
    EXPECT_EQ(responses[i].overflow, want.overflow);
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(responses[i].tuples[j].hidden_id, want.tuples[j].hidden_id);
      EXPECT_EQ(responses[i].tuples[j].tuple, want.tuples[j].tuple);
    }
  }

  // The next call reconnects transparently and answers the suffix.
  const std::vector<Query> suffix(batch.begin() + 5, batch.end());
  std::vector<Response> rest;
  ASSERT_TRUE(client->IssueBatch(suffix, &rest).ok());
  EXPECT_EQ(rest.size(), 3u);
  EXPECT_EQ(client->reconnects(), 1u);
}

TEST(RemoteFaultTest, CrawlSurvivesRepeatedDropsViaResume) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 350;
  gen.value_range = 200;
  gen.seed = 72;
  auto data =
      std::make_shared<const Dataset>(GenerateSyntheticNumeric(gen));

  LocalServer local(data, 8);
  RankShrink truth_crawler;
  CrawlResult truth = truth_crawler.Crawl(&local);
  ASSERT_TRUE(truth.status.ok());

  // Every connection dies after 7 answers; the crawl keeps losing its
  // connection mid-batch and must make progress anyway.
  net::ServiceEndpointOptions faulty;
  faulty.drop_connection_after_responses = 7;
  RemoteStack stack(data, 8, faulty);
  auto client = stack.Connect();

  RankShrink crawler;
  CrawlOptions options;
  options.batch_size = 4;
  CrawlResult result = crawler.Crawl(client.get(), options);
  int interruptions = 0;
  while (!result.status.ok() && interruptions < 10000) {
    ASSERT_TRUE(result.status.IsUnavailable()) << result.status.ToString();
    ASSERT_NE(result.resume_state, nullptr)
        << "a transport fault must leave the crawl resumable";
    ++interruptions;
    result = crawler.Resume(client.get(), result.resume_state, options);
  }
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(interruptions, 0);
  EXPECT_GT(client->reconnects(), 0u);
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_EQ(result.queries_issued, truth.queries_issued)
      << "client-side accounting never double-bills re-submitted work";
}

TEST(RemoteFaultTest, RetryingServerAbsorbsDropsTransparently) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {6, 5};
  gen.n = 300;
  gen.seed = 73;
  auto data = std::make_shared<const Dataset>(
      GenerateSyntheticCategorical(gen));

  net::ServiceEndpointOptions faulty;
  faulty.drop_connection_after_responses = 9;
  RemoteStack stack(data,
                    std::max<uint64_t>(8, data->MaxPointMultiplicity()),
                    faulty);
  auto client = stack.Connect();
  RetryingServer retrying(client.get(), /*max_retries=*/3);

  SliceCoverCrawler crawler(/*lazy=*/true);
  CrawlResult result = crawler.Crawl(&retrying);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_GT(retrying.retries_performed(), 0u);
  EXPECT_GT(client->reconnects(), 0u);
}

// --- fault: server restart + checkpoint resume ------------------------------

TEST(RemoteFaultTest, ServerRestartResumesFromCheckpoint) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 400;
  gen.value_range = 250;
  gen.seed = 61;  // same space as the equivalence case
  auto data =
      std::make_shared<const Dataset>(GenerateSyntheticNumeric(gen));

  LocalServer local(data, 8);
  RankShrink truth_crawler;
  CrawlResult truth = truth_crawler.Crawl(&local);
  ASSERT_TRUE(truth.status.ok());

  CrawlServiceOptions service_options;
  service_options.max_parallelism = 2;
  CrawlService service(data, 8, nullptr, service_options);

  auto first_endpoint = std::make_unique<net::ServiceEndpoint>(&service);
  ASSERT_TRUE(first_endpoint->Start().ok());
  const uint16_t port = first_endpoint->port();

  std::unique_ptr<net::RemoteServer> client;
  ASSERT_TRUE(
      net::RemoteServer::Connect("127.0.0.1", port, {}, &client).ok());

  // Spend a small client-side budget, then checkpoint mid-crawl.
  RankShrink crawler;
  CrawlOptions options;
  options.batch_size = 4;
  options.max_queries = 25;
  CrawlResult partial = crawler.Crawl(client.get(), options);
  ASSERT_TRUE(partial.status.IsResourceExhausted())
      << partial.status.ToString();
  ASSERT_NE(partial.resume_state, nullptr);
  std::stringstream checkpoint;
  ASSERT_TRUE(
      SaveCheckpoint(*partial.resume_state, *client->schema(), &checkpoint)
          .ok());

  // The server process "restarts": the old endpoint dies, a new one comes
  // up on the same port over the same service.
  first_endpoint.reset();
  net::ServiceEndpointOptions rebind;
  rebind.port = port;
  net::ServiceEndpoint second_endpoint(&service, rebind);
  ASSERT_TRUE(second_endpoint.Start().ok());

  // Load the checkpoint and resume. The client's first call rides the
  // dead connection (typed Unavailable), then reconnects; a RetryingServer
  // absorbs exactly that hiccup.
  std::shared_ptr<CrawlState> resumed;
  ASSERT_TRUE(
      LoadCheckpoint(&checkpoint, client->schema(), &resumed).ok());
  RetryingServer retrying(client.get(), /*max_retries=*/2);
  CrawlOptions rest;
  rest.batch_size = 4;
  CrawlResult result = crawler.Resume(&retrying, resumed, rest);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_EQ(result.queries_issued, truth.queries_issued);
  EXPECT_EQ(client->reconnects(), 1u);
}

// --- fault: malformed frames, both directions -------------------------------

TEST(RemoteFaultTest, GarbageFromServerIsTypedError) {
  // A fake "server" that accepts the handshake and then speaks garbage: an
  // oversized length prefix. The client must fail typed, not hang or trust
  // the length.
  net::Listener listener;
  ASSERT_TRUE(net::Listener::Listen("127.0.0.1", 0, &listener).ok());
  std::thread fake_server([&listener] {
    net::Socket conn;
    if (!listener.Accept(&conn).ok()) return;
    net::Frame hello;
    if (!net::RecvFrame(&conn, &hello).ok()) return;
    // 0xFFFFFFFF length prefix: far beyond kMaxFramePayload. Best-effort:
    // the client may sever before the bytes land, and either way the
    // assertion under test is the *client's* typed failure below.
    const unsigned char garbage[] = {0xff, 0xff, 0xff, 0xff, 0x02};
    (void)conn.SendAll(garbage, sizeof(garbage));
  });

  std::unique_ptr<net::RemoteServer> client;
  Status s = net::RemoteServer::Connect("127.0.0.1", listener.port(), {},
                                        &client);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  fake_server.join();
}

TEST(RemoteFaultTest, EndpointSurvivesGarbageSpeakers) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {4, 4};
  gen.n = 200;
  gen.seed = 74;
  auto data = std::make_shared<const Dataset>(
      GenerateSyntheticCategorical(gen));
  RemoteStack stack(data, 8);

  {
    // Plain HTTP on the frame port is sniffed, not mistaken for a frame:
    // an unknown path earns a 404 and a close, never a crash.
    net::Socket raw;
    ASSERT_TRUE(
        net::Socket::Connect("127.0.0.1", stack.endpoint()->port(), &raw)
            .ok());
    const std::string http = "GET / HTTP/1.1\r\nHost: hdc\r\n\r\n";
    ASSERT_TRUE(raw.SendAll(http.data(), http.size()).ok());
    char head[12];
    ASSERT_TRUE(raw.RecvAll(head, sizeof(head)).ok());
    EXPECT_EQ(std::string(head, sizeof(head)), "HTTP/1.0 404");
    // Drain until the endpoint hangs up (Connection: close).
    char byte;
    while (raw.RecvAll(&byte, 1).ok()) {
    }
  }
  {
    // A well-formed frame of the wrong type as an opener.
    net::Socket raw;
    ASSERT_TRUE(
        net::Socket::Connect("127.0.0.1", stack.endpoint()->port(), &raw)
            .ok());
    ASSERT_TRUE(
        net::SendFrame(&raw, net::FrameType::kStatsRequest, "").ok());
    char byte;
    EXPECT_FALSE(raw.RecvAll(&byte, 1).ok());
  }

  // After both abuses, a legitimate client still gets served.
  auto client = stack.Connect();
  Response response;
  ASSERT_TRUE(
      client->Issue(Query::FullSpace(client->schema()), &response).ok());
  EXPECT_EQ(response.size(), 8u);
  EXPECT_GE(stack.endpoint()->connections_accepted(), 3u);
}

// --- politeness over the live transport -------------------------------------

TEST(RemotePolitenessTest, PacesWireRoundsOnTheInjectedClock) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {4, 4};
  gen.n = 200;
  gen.seed = 75;
  auto data = std::make_shared<const Dataset>(
      GenerateSyntheticCategorical(gen));
  RemoteStack stack(data, 8);

  FakeClock clock;
  net::RemoteServerOptions options;
  options.politeness.min_round_delay = std::chrono::milliseconds(200);
  options.politeness.clock = &clock;
  auto client = stack.Connect(options);

  Response response;
  const Query full = Query::FullSpace(client->schema());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(client->Issue(full, &response).ok());
  }
  // Round 1 free, rounds 2 and 3 each waited the full 200ms (the real
  // wire time is invisible to the fake clock).
  EXPECT_EQ(client->politeness().rounds(), 3u);
  ASSERT_EQ(clock.sleep_count(), 2u);
  EXPECT_EQ(clock.sleeps()[0],
            std::chrono::nanoseconds(std::chrono::milliseconds(200)));
  EXPECT_EQ(clock.sleeps()[1],
            std::chrono::nanoseconds(std::chrono::milliseconds(200)));
}

}  // namespace
}  // namespace hdc
