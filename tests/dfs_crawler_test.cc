// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/dfs_crawler.h"

#include <gtest/gtest.h>

#include <memory>

#include "gen/synthetic.h"
#include "paper_categorical_example.h"
#include "server/local_server.h"
#include "test_util.h"

namespace hdc {
namespace {

using testing_util::ExpectExactExtraction;
using testing_util::PaperFigure5Dataset;

TEST(DfsCrawlerTest, RejectsNonCategoricalSchemas) {
  DfsCrawler crawler;
  EXPECT_FALSE(crawler.ValidateSchema(*Schema::Numeric(2)).ok());
  EXPECT_FALSE(crawler
                   .ValidateSchema(*Schema::Make(
                       {AttributeSpec::Categorical("C", 2),
                        AttributeSpec::Numeric("N")}))
                   .ok());
  EXPECT_TRUE(crawler.ValidateSchema(*Schema::Categorical({2, 3})).ok());
}

// Section 3.1's walk of Figure 5 with k = 3: DFS "eventually visits all of
// u1, ..., u13" — the root, its 4 children, and the children of the two
// overflowing level-1 nodes (A1=1 and A1=3). 13 queries total.
TEST(DfsCrawlerTest, PaperFigure5VisitsThirteenNodes) {
  auto data = PaperFigure5Dataset();
  LocalServer server(data, testing_util::kPaperFigure5K);
  DfsCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_EQ(result.queries_issued, 13u);
}

TEST(DfsCrawlerTest, PruningStopsAtResolvedNodes) {
  // All tuples under A1=1; every other subtree resolves (empty) at level 1.
  SchemaPtr schema = Schema::Categorical({3, 50});
  auto data = std::make_shared<Dataset>(schema);
  for (Value v = 1; v <= 50; ++v) data->Add(Tuple({1, v}));
  LocalServer server(data, /*k=*/10);
  DfsCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  // root + 3 children + 50 grandchildren under A1=1 = 54; the A1=2 and
  // A1=3 subtrees must have been pruned after 1 query each.
  EXPECT_EQ(result.queries_issued, 54u);
}

TEST(DfsCrawlerTest, ResolvedRootIsSingleQuery) {
  SchemaPtr schema = Schema::Categorical({4, 4});
  auto data = std::make_shared<Dataset>(schema);
  data->Add(Tuple({1, 1}));
  data->Add(Tuple({4, 4}));
  LocalServer server(data, /*k=*/5);
  DfsCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.queries_issued, 1u);
  EXPECT_EQ(result.extracted.size(), 2u);
}

TEST(DfsCrawlerTest, DetectsUnsolvableInstance) {
  SchemaPtr schema = Schema::Categorical({2, 2});
  auto data = std::make_shared<Dataset>(schema);
  for (int i = 0; i < 4; ++i) data->Add(Tuple({1, 1}));
  LocalServer server(data, /*k=*/3);
  DfsCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  EXPECT_TRUE(result.status.IsUnsolvable());
}

TEST(DfsCrawlerTest, ExtractsZipfSkewedData) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {6, 5, 4};
  gen.n = 900;
  gen.zipf_s = 1.0;
  gen.seed = 21;
  Dataset data = GenerateSyntheticCategorical(gen);
  const uint64_t k = 128;
  ASSERT_LE(data.MaxPointMultiplicity(), k);
  DfsCrawler crawler;
  ExpectExactExtraction(&crawler, data, k);
}

TEST(DfsCrawlerTest, SingleAttributeDomainScan) {
  SchemaPtr schema = Schema::Categorical({10});
  auto data = std::make_shared<Dataset>(schema);
  for (Value v = 1; v <= 10; ++v) {
    for (Value c = 0; c < v; ++c) data->Add(Tuple({v}));
  }
  LocalServer server(data, /*k=*/10);
  DfsCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  // Root overflows (55 tuples > 10), then 10 point queries.
  EXPECT_EQ(result.queries_issued, 11u);
}

}  // namespace
}  // namespace hdc
