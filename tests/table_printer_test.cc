// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/table_printer.h"

#include <gtest/gtest.h>

#include "util/csv_writer.h"

namespace hdc {
namespace {

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter table("Demo", {"k", "queries"});
  table.AddRow({"64", "1234"});
  table.AddRow({"1024", "9"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("k     queries"), std::string::npos);
  EXPECT_NE(out.find("64    1234"), std::string::npos);
  EXPECT_NE(out.find("1024  9"), std::string::npos);
}

TEST(TablePrinterTest, RuleMatchesWidths) {
  TablePrinter table("", {"ab", "c"});
  table.AddRow({"x", "yyyy"});
  std::string out = table.ToString();
  // Widths: max("ab","x")=2, max("c","yyyy")=4.
  EXPECT_NE(out.find("--  ----"), std::string::npos);
}

TEST(TablePrinterTest, CellFormatting) {
  EXPECT_EQ(TablePrinter::Cell(static_cast<int64_t>(-5)), "-5");
  EXPECT_EQ(TablePrinter::Cell(static_cast<uint64_t>(7)), "7");
  EXPECT_EQ(TablePrinter::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Cell(2.0, 0), "2");
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter table("t", {"a"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(CsvWriterTest, EscapesSpecialCells) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, WritesFile) {
  std::string path = ::testing::TempDir() + "/hdc_csv_test.csv";
  CsvWriter writer(path);
  ASSERT_TRUE(writer.status().ok());
  writer.WriteRow({"k", "cost"});
  writer.WriteRow({"64", "10,5"});
  ASSERT_TRUE(writer.Close().ok());

  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "k,cost");
  EXPECT_EQ(line2, "64,\"10,5\"");
}

TEST(CsvWriterTest, BadPathReportsError) {
  CsvWriter writer("/nonexistent-dir-xyz/file.csv");
  EXPECT_FALSE(writer.status().ok());
}

}  // namespace
}  // namespace hdc
