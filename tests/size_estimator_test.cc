// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/size_estimator.h"

#include <gtest/gtest.h>

#include <memory>

#include "gen/synthetic.h"
#include "server/local_server.h"

namespace hdc {
namespace {

TEST(SizeEstimatorTest, ExactWhenRootResolves) {
  SchemaPtr schema = Schema::Categorical({4, 4});
  auto data = std::make_shared<Dataset>(schema);
  for (Value v = 1; v <= 4; ++v) data->Add(Tuple({v, v}));
  LocalServer server(data, /*k=*/10);
  SizeEstimate estimate;
  ASSERT_TRUE(EstimateDatabaseSize(&server, 100, 7, &estimate).ok());
  EXPECT_TRUE(estimate.exact);
  EXPECT_DOUBLE_EQ(estimate.estimate, 4.0);
  EXPECT_EQ(estimate.queries, 1u);
}

TEST(SizeEstimatorTest, RejectsNumericSpaces) {
  auto data = std::make_shared<Dataset>(Schema::Numeric(1));
  data->Add(Tuple({1}));
  LocalServer server(data, 4);
  SizeEstimate estimate;
  Status s = EstimateDatabaseSize(&server, 10, 7, &estimate);
  EXPECT_EQ(s.code(), Status::Code::kNotSupported);
}

TEST(SizeEstimatorTest, RejectsZeroWalks) {
  auto data = std::make_shared<Dataset>(Schema::Categorical({2}));
  data->Add(Tuple({1}));
  LocalServer server(data, 4);
  SizeEstimate estimate;
  EXPECT_TRUE(
      EstimateDatabaseSize(&server, 0, 7, &estimate).IsInvalidArgument());
}

TEST(SizeEstimatorTest, EstimateConvergesToTrueSize) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {6, 8, 10};
  gen.n = 5000;
  gen.zipf_s = 0.5;
  gen.seed = 95;
  auto data = std::make_shared<Dataset>(GenerateSyntheticCategorical(gen));
  const uint64_t k = std::max<uint64_t>(64, data->MaxPointMultiplicity());
  LocalServer server(data, k);

  SizeEstimate estimate;
  ASSERT_TRUE(EstimateDatabaseSize(&server, 800, 11, &estimate).ok());
  EXPECT_FALSE(estimate.exact);
  EXPECT_EQ(estimate.walks, 800u);
  EXPECT_GT(estimate.standard_error, 0.0);
  // Unbiased estimator, 800 walks: expect within ~4 standard errors.
  const double n = static_cast<double>(data->size());
  EXPECT_NEAR(estimate.estimate, n, 4.0 * estimate.standard_error + 0.05 * n)
      << "stderr=" << estimate.standard_error;
}

TEST(SizeEstimatorTest, CostsAtMostDQueriesPerWalk) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {5, 5, 5};
  gen.n = 2000;
  gen.seed = 96;
  auto data = std::make_shared<Dataset>(GenerateSyntheticCategorical(gen));
  const uint64_t k = std::max<uint64_t>(16, data->MaxPointMultiplicity());
  LocalServer server(data, k);

  SizeEstimate estimate;
  const uint64_t walks = 50;
  ASSERT_TRUE(EstimateDatabaseSize(&server, walks, 12, &estimate).ok());
  EXPECT_LE(estimate.queries, 1 + walks * 3);
  EXPECT_EQ(estimate.queries, server.queries_served());
}

TEST(SizeEstimatorTest, DeterministicPerSeed) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {4, 6};
  gen.n = 1500;
  gen.seed = 97;
  auto data = std::make_shared<Dataset>(GenerateSyntheticCategorical(gen));
  const uint64_t k = std::max<uint64_t>(32, data->MaxPointMultiplicity());
  LocalServer server(data, k);

  SizeEstimate a, b;
  ASSERT_TRUE(EstimateDatabaseSize(&server, 100, 13, &a).ok());
  ASSERT_TRUE(EstimateDatabaseSize(&server, 100, 13, &b).ok());
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
}

}  // namespace
}  // namespace hdc
