// Copyright (c) hdc authors. Apache-2.0 license.
#include "analytics/aggregates.h"

#include <gtest/gtest.h>

namespace hdc {
namespace {

// Cars: (Make in 1..3, Price, Mileage).
Dataset Cars() {
  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("Make", 3),
      AttributeSpec::NumericBounded("Price", 0, 100000),
      AttributeSpec::NumericBounded("Mileage", 0, 300000),
  });
  Dataset d(schema);
  d.Add(Tuple({1, 10000, 50000}));
  d.Add(Tuple({1, 12000, 40000}));
  d.Add(Tuple({2, 30000, 20000}));
  d.Add(Tuple({2, 34000, 10000}));
  d.Add(Tuple({3, 60000, 5000}));
  d.Add(Tuple({1, 8000, 90000}));
  return d;
}

Query All(const Dataset& d) { return Query::FullSpace(d.schema()); }

TEST(AggregateTest, CountAll) {
  Dataset d = Cars();
  AggregateResult r = Aggregate(d, All(d), AggregateSpec::Count());
  EXPECT_EQ(r.rows, 6u);
  EXPECT_DOUBLE_EQ(r.value, 6.0);
}

TEST(AggregateTest, CountFiltered) {
  Dataset d = Cars();
  Query make1 = All(d).WithCategoricalEquals(0, 1);
  AggregateResult r = Aggregate(d, make1, AggregateSpec::Count());
  EXPECT_EQ(r.rows, 3u);
}

TEST(AggregateTest, SumAvgMinMax) {
  Dataset d = Cars();
  EXPECT_DOUBLE_EQ(Aggregate(d, All(d), AggregateSpec::Sum(1)).value,
                   154000.0);
  EXPECT_DOUBLE_EQ(Aggregate(d, All(d), AggregateSpec::Avg(1)).value,
                   154000.0 / 6.0);
  EXPECT_DOUBLE_EQ(Aggregate(d, All(d), AggregateSpec::Min(1)).value,
                   8000.0);
  EXPECT_DOUBLE_EQ(Aggregate(d, All(d), AggregateSpec::Max(1)).value,
                   60000.0);
}

TEST(AggregateTest, EmptyFilterYieldsZeroRows) {
  Dataset d = Cars();
  Query none = All(d).WithNumericRange(1, 99999, 100000);
  AggregateResult r = Aggregate(d, none, AggregateSpec::Avg(1));
  EXPECT_EQ(r.rows, 0u);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(AggregateTest, RangeAndEqualityFilterCombine) {
  Dataset d = Cars();
  Query q = All(d)
                .WithCategoricalEquals(0, 2)
                .WithNumericRange(1, 0, 32000);  // make 2, price <= 32000
  AggregateResult r = Aggregate(d, q, AggregateSpec::Count());
  EXPECT_EQ(r.rows, 1u);
}

TEST(GroupByTest, AvgPriceByMake) {
  Dataset d = Cars();
  auto rows = GroupBy(d, All(d), 0, AggregateSpec::Avg(1));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].group, 1);
  EXPECT_DOUBLE_EQ(rows[0].agg.value, 10000.0);
  EXPECT_EQ(rows[0].agg.rows, 3u);
  EXPECT_EQ(rows[1].group, 2);
  EXPECT_DOUBLE_EQ(rows[1].agg.value, 32000.0);
  EXPECT_EQ(rows[2].group, 3);
  EXPECT_DOUBLE_EQ(rows[2].agg.value, 60000.0);
}

TEST(GroupByTest, FilteredGroupsOmitEmpty) {
  Dataset d = Cars();
  Query cheap = All(d).WithNumericRange(1, 0, 15000);
  auto rows = GroupBy(d, cheap, 0, AggregateSpec::Count());
  ASSERT_EQ(rows.size(), 1u);  // only make 1 has cars under 15k
  EXPECT_EQ(rows[0].group, 1);
  EXPECT_EQ(rows[0].agg.rows, 3u);
}

TEST(HistogramTest, BinsCoverRangeAndCounts) {
  Dataset d = Cars();
  auto bins = Histogram(d, All(d), 1, 2);  // price range 8000..60000
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].lo, 8000);
  EXPECT_EQ(bins[1].hi, 60000);
  uint64_t total = 0;
  for (const auto& b : bins) total += b.count;
  EXPECT_EQ(total, 6u);
  // Width = ceil(52001 / 2) = 26001: bin 0 spans 8000..34000 (5 prices),
  // bin 1 spans 34001..60000 (1 price).
  EXPECT_EQ(bins[0].hi, 34000);
  EXPECT_EQ(bins[0].count, 5u);
  EXPECT_EQ(bins[1].count, 1u);
}

TEST(HistogramTest, MoreBinsThanDistinctValuesClamps) {
  SchemaPtr schema = Schema::NumericBounded({{0, 10}});
  Dataset d(schema);
  d.Add(Tuple({3}));
  d.Add(Tuple({3}));
  auto bins = Histogram(d, Query::FullSpace(schema), 0, 100);
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].count, 2u);
}

TEST(HistogramTest, EmptyInputYieldsNoBins) {
  Dataset d = Cars();
  Query none = All(d).WithNumericRange(2, 299999, 300000);
  EXPECT_TRUE(Histogram(d, none, 1, 4).empty());
}

TEST(QuantileTest, NearestRank) {
  Dataset d = Cars();
  // Prices sorted: 8000 10000 12000 30000 34000 60000.
  EXPECT_EQ(Quantile(d, All(d), 1, 0.0), 8000);
  EXPECT_EQ(Quantile(d, All(d), 1, 0.5), 12000);
  EXPECT_EQ(Quantile(d, All(d), 1, 1.0), 60000);
}

TEST(QuantileTest, EmptyReturnsNullopt) {
  Dataset d = Cars();
  Query none = All(d).WithCategoricalEquals(0, 3).WithNumericRange(1, 0, 1);
  EXPECT_EQ(Quantile(d, none, 1, 0.5), std::nullopt);
}

TEST(TopByTest, CheapestAndPriciest) {
  Dataset d = Cars();
  auto cheapest = TopBy(d, All(d), 1, 2, /*ascending=*/true);
  ASSERT_EQ(cheapest.size(), 2u);
  EXPECT_EQ(cheapest[0][1], 8000);
  EXPECT_EQ(cheapest[1][1], 10000);

  auto priciest = TopBy(d, All(d), 1, 1, /*ascending=*/false);
  ASSERT_EQ(priciest.size(), 1u);
  EXPECT_EQ(priciest[0][1], 60000);
}

TEST(TopByTest, LimitBeyondSizeReturnsAll) {
  Dataset d = Cars();
  EXPECT_EQ(TopBy(d, All(d), 1, 100, true).size(), 6u);
}

TEST(AggregateOpTest, Names) {
  EXPECT_STREQ(AggregateOpName(AggregateOp::kCount), "count");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kAvg), "avg");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kMax), "max");
}

TEST(DistinctValuesTest, SortedAndUnique) {
  Dataset d = Cars();
  auto makes = DistinctValues(d, All(d), 0);
  EXPECT_EQ(makes, (std::vector<Value>{1, 2, 3}));
  auto prices = DistinctValues(d, All(d).WithCategoricalEquals(0, 2), 1);
  EXPECT_EQ(prices, (std::vector<Value>{30000, 34000}));
}

TEST(DistinctValuesTest, EmptyFilter) {
  Dataset d = Cars();
  EXPECT_TRUE(
      DistinctValues(d, All(d).WithNumericRange(1, 99, 100), 0).empty());
}

TEST(CrossTabTest, CountsPairsSorted) {
  SchemaPtr schema = Schema::Categorical({2, 2});
  Dataset d(schema);
  d.Add(Tuple({1, 1}));
  d.Add(Tuple({1, 1}));
  d.Add(Tuple({1, 2}));
  d.Add(Tuple({2, 2}));
  auto cells = CrossTab(d, Query::FullSpace(schema), 0, 1);
  ASSERT_EQ(cells.size(), 3u);  // the (2,1) cell is empty and omitted
  EXPECT_EQ(cells[0].row, 1);
  EXPECT_EQ(cells[0].column, 1);
  EXPECT_EQ(cells[0].count, 2u);
  EXPECT_EQ(cells[1].row, 1);
  EXPECT_EQ(cells[1].column, 2);
  EXPECT_EQ(cells[1].count, 1u);
  EXPECT_EQ(cells[2].row, 2);
  EXPECT_EQ(cells[2].count, 1u);
}

TEST(CrossTabTest, FilterApplies) {
  Dataset d = Cars();
  // Make x Owner-of-price-band: cross make with mileage bucket via filter.
  auto cells =
      CrossTab(d, All(d).WithNumericRange(1, 0, 15000), 0, 0);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].row, 1);
  EXPECT_EQ(cells[0].count, 3u);
}

}  // namespace
}  // namespace hdc
