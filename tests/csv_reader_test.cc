// Copyright (c) hdc authors. Apache-2.0 license.
#include "data/csv_reader.h"

#include <gtest/gtest.h>

#include <fstream>

#include "gen/synthetic.h"

namespace hdc {
namespace {

TEST(SchemaSpecTest, ParsesMixedSpec) {
  SchemaPtr schema;
  ASSERT_TRUE(ParseSchemaSpec(
                  "Make:cat:85, Price:num:200:200000, Mileage:num", &schema)
                  .ok());
  ASSERT_EQ(schema->num_attributes(), 3u);
  EXPECT_EQ(schema->attribute(0).name, "Make");
  EXPECT_TRUE(schema->IsCategorical(0));
  EXPECT_EQ(schema->domain_size(0), 85u);
  EXPECT_TRUE(schema->IsNumeric(1));
  EXPECT_EQ(schema->attribute(1).lo, 200);
  EXPECT_EQ(schema->attribute(1).hi, 200000);
  EXPECT_TRUE(schema->IsNumeric(2));
  EXPECT_EQ(schema->attribute(2).lo, kNumericMin);
}

TEST(SchemaSpecTest, RoundTripsThroughFormat) {
  SchemaPtr schema;
  const std::string spec = "A:cat:4, B:num:-10:10, C:num";
  ASSERT_TRUE(ParseSchemaSpec(spec, &schema).ok());
  EXPECT_EQ(FormatSchemaSpec(*schema), spec);

  SchemaPtr again;
  ASSERT_TRUE(ParseSchemaSpec(FormatSchemaSpec(*schema), &again).ok());
  EXPECT_TRUE(*schema == *again);
}

TEST(SchemaSpecTest, RejectsMalformedSpecs) {
  SchemaPtr schema;
  EXPECT_FALSE(ParseSchemaSpec("", &schema).ok());
  EXPECT_FALSE(ParseSchemaSpec("NoKind", &schema).ok());
  EXPECT_FALSE(ParseSchemaSpec("A:cat", &schema).ok());          // no domain
  EXPECT_FALSE(ParseSchemaSpec("A:cat:0", &schema).ok());        // empty dom
  EXPECT_FALSE(ParseSchemaSpec("A:cat:xyz", &schema).ok());      // not int
  EXPECT_FALSE(ParseSchemaSpec("A:num:5", &schema).ok());        // one bound
  EXPECT_FALSE(ParseSchemaSpec("A:num:10:5", &schema).ok());     // reversed
  EXPECT_FALSE(ParseSchemaSpec("A:weird", &schema).ok());        // bad kind
  EXPECT_FALSE(ParseSchemaSpec(":cat:3", &schema).ok());         // no name
}

TEST(LoadCsvTest, RoundTripsSaveCsv) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {5, 9};
  gen.num_numeric = 2;
  gen.n = 500;
  gen.seed = 21;
  Dataset original = GenerateSyntheticMixed(gen);
  const std::string path = ::testing::TempDir() + "/hdc_roundtrip.csv";
  ASSERT_TRUE(original.SaveCsv(path).ok());

  Dataset loaded(original.schema());
  ASSERT_TRUE(LoadCsv(path, original.schema(), &loaded).ok());
  EXPECT_EQ(loaded.size(), original.size());
  // Order-preserving load: tuple-for-tuple equality, not just multiset.
  for (size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_EQ(loaded.tuple(i), original.tuple(i)) << i;
  }
}

TEST(LoadCsvTest, MissingFile) {
  SchemaPtr schema = Schema::Numeric(1);
  Dataset out(schema);
  Status s = LoadCsv("/does/not/exist.csv", schema, &out);
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
}

TEST(LoadCsvTest, HeaderMismatch) {
  const std::string path = ::testing::TempDir() + "/hdc_badheader.csv";
  std::ofstream(path) << "X,Y\n1,2\n";
  SchemaPtr schema;
  ASSERT_TRUE(ParseSchemaSpec("A:num, B:num", &schema).ok());
  Dataset out(schema);
  EXPECT_FALSE(LoadCsv(path, schema, &out).ok());
}

TEST(LoadCsvTest, WrongArityRow) {
  const std::string path = ::testing::TempDir() + "/hdc_badrow.csv";
  std::ofstream(path) << "A,B\n1,2\n3\n";
  SchemaPtr schema;
  ASSERT_TRUE(ParseSchemaSpec("A:num, B:num", &schema).ok());
  Dataset out(schema);
  Status s = LoadCsv(path, schema, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find(":3"), std::string::npos) << s.ToString();
}

TEST(LoadCsvTest, NonIntegerCell) {
  const std::string path = ::testing::TempDir() + "/hdc_badcell.csv";
  std::ofstream(path) << "A\nhello\n";
  SchemaPtr schema;
  ASSERT_TRUE(ParseSchemaSpec("A:num", &schema).ok());
  Dataset out(schema);
  EXPECT_FALSE(LoadCsv(path, schema, &out).ok());
}

TEST(LoadCsvTest, OutOfDomainCell) {
  const std::string path = ::testing::TempDir() + "/hdc_baddomain.csv";
  std::ofstream(path) << "A\n7\n";
  SchemaPtr schema;
  ASSERT_TRUE(ParseSchemaSpec("A:cat:3", &schema).ok());
  Dataset out(schema);
  Status s = LoadCsv(path, schema, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("domain"), std::string::npos);
}

TEST(LoadCsvTest, SkipsBlankLinesAndCr) {
  const std::string path = ::testing::TempDir() + "/hdc_blank.csv";
  std::ofstream(path) << "A\r\n1\r\n\r\n2\n\n";
  SchemaPtr schema;
  ASSERT_TRUE(ParseSchemaSpec("A:num", &schema).ok());
  Dataset out(schema);
  ASSERT_TRUE(LoadCsv(path, schema, &out).ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST(LoadCsvTest, QuotedCells) {
  const std::string path = ::testing::TempDir() + "/hdc_quoted.csv";
  std::ofstream(path) << "A,B\n\"1\",\"2\"\n";
  SchemaPtr schema;
  ASSERT_TRUE(ParseSchemaSpec("A:num, B:num", &schema).ok());
  Dataset out(schema);
  ASSERT_TRUE(LoadCsv(path, schema, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.tuple(0), Tuple({1, 2}));
}

}  // namespace
}  // namespace hdc
