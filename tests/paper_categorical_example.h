// Copyright (c) hdc authors. Apache-2.0 license.
//
// The categorical worked example of the paper's Figures 5 and 6: a 4x4
// two-attribute space with 10 tuples, k = 3. The slice-query lookup table
// (Figure 6) is:
//   A1=1: overflow   A1=2: {t5}   A1=3: overflow   A1=4: {t10}
//   A2=1: {t1,t6}    A2=2: {t2,t7,t10}   A2=3: {t3,t8,t9}   A2=4: {t4,t5}
#pragma once

#include <memory>

#include "data/dataset.h"

namespace hdc {
namespace testing_util {

inline std::shared_ptr<Dataset> PaperFigure5Dataset() {
  SchemaPtr schema = Schema::Categorical({4, 4});
  auto d = std::make_shared<Dataset>(schema);
  d->Add(Tuple({1, 1}));  // t1
  d->Add(Tuple({1, 2}));  // t2
  d->Add(Tuple({1, 3}));  // t3
  d->Add(Tuple({1, 4}));  // t4
  d->Add(Tuple({2, 4}));  // t5
  d->Add(Tuple({3, 1}));  // t6
  d->Add(Tuple({3, 2}));  // t7
  d->Add(Tuple({3, 3}));  // t8
  d->Add(Tuple({3, 3}));  // t9 (duplicate point with t8)
  d->Add(Tuple({4, 2}));  // t10
  return d;
}

inline constexpr uint64_t kPaperFigure5K = 3;

}  // namespace testing_util
}  // namespace hdc
