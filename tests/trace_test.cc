// Copyright (c) hdc authors. Apache-2.0 license.
//
// The per-query trace drives the progressiveness reproduction (Figure 13);
// it must be complete, monotone and consistent with the final result.
#include <gtest/gtest.h>

#include <memory>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/local_server.h"

namespace hdc {
namespace {

CrawlResult TracedCrawl(Crawler* crawler, std::shared_ptr<Dataset> data,
                        uint64_t k) {
  LocalServer server(std::move(data), k);
  CrawlOptions options;
  options.record_trace = true;
  CrawlResult result = crawler->Crawl(&server, options);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  return result;
}

void CheckTraceInvariants(const CrawlResult& result, size_t n) {
  ASSERT_EQ(result.trace.size(), result.queries_issued);
  uint64_t prev_seen = 0, prev_collected = 0;
  for (size_t i = 0; i < result.trace.size(); ++i) {
    const TraceEntry& e = result.trace[i];
    EXPECT_EQ(e.query_index, i + 1);
    EXPECT_GE(e.rows_seen, prev_seen) << "rows_seen must be monotone";
    EXPECT_GE(e.tuples_collected, prev_collected)
        << "tuples_collected must be monotone";
    prev_seen = e.rows_seen;
    prev_collected = e.tuples_collected;
  }
  EXPECT_EQ(result.trace.back().tuples_collected, n);
  EXPECT_EQ(result.rows_seen, n)
      << "a complete crawl has seen every physical row";
}

TEST(TraceTest, RankShrinkTraceInvariants) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 900;
  gen.value_range = 300;
  gen.seed = 42;
  auto data = std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));
  RankShrink crawler;
  CrawlResult result = TracedCrawl(&crawler, data, 8);
  CheckTraceInvariants(result, gen.n);
}

TEST(TraceTest, LazySliceCoverTraceInvariants) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {6, 8, 10};
  gen.n = 900;
  gen.seed = 43;
  auto data = std::make_shared<Dataset>(GenerateSyntheticCategorical(gen));
  SliceCoverCrawler crawler(/*lazy=*/true);
  CrawlResult result = TracedCrawl(&crawler, data, 64);
  CheckTraceInvariants(result, gen.n);
}

TEST(TraceTest, HybridTraceInvariants) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {4, 4};
  gen.num_numeric = 2;
  gen.n = 900;
  gen.value_range = 200;
  gen.seed = 44;
  auto data = std::make_shared<Dataset>(GenerateSyntheticMixed(gen));
  HybridCrawler crawler;
  CrawlResult result = TracedCrawl(&crawler, data, 8);
  CheckTraceInvariants(result, gen.n);
}

TEST(TraceTest, TraceOffByDefault) {
  SyntheticNumericOptions gen;
  gen.d = 1;
  gen.n = 200;
  gen.value_range = 100;
  gen.seed = 45;
  auto data = std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));
  LocalServer server(data, 8);
  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.trace.empty());
  EXPECT_GT(result.queries_issued, 0u);
}

TEST(TraceTest, TraceSurvivesResume) {
  SyntheticNumericOptions gen;
  gen.d = 1;
  gen.n = 500;
  gen.value_range = 300;
  gen.seed = 46;
  auto data = std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));
  LocalServer server(data, 8);
  RankShrink crawler;
  CrawlOptions options;
  options.record_trace = true;
  options.max_queries = 5;
  CrawlResult result = crawler.Crawl(&server, options);
  int guard = 0;
  while (result.status.IsResourceExhausted() && ++guard < 1000) {
    result = crawler.Resume(&server, result.resume_state, options);
  }
  ASSERT_TRUE(result.status.ok());
  CheckTraceInvariants(result, gen.n);
}

}  // namespace
}  // namespace hdc
