// Copyright (c) hdc authors. Apache-2.0 license.
//
// CrawlService / ServerSession semantics: a single-session service is
// byte-for-byte the classic LocalServer conversation, session metering
// (stats, budget, log, trace, schema view) is per session, and the shared
// LocalIndex serves any number of servers without cross-talk.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/crawl_service.h"
#include "server/decorators.h"
#include "server/local_server.h"
#include "test_util.h"

namespace hdc {
namespace {

std::shared_ptr<const Dataset> CategoricalData(uint64_t seed = 31) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {5, 6, 4};
  gen.n = 800;
  gen.seed = seed;
  return std::make_shared<const Dataset>(GenerateSyntheticCategorical(gen));
}

std::shared_ptr<const Dataset> NumericData(uint64_t seed = 32) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 600;
  gen.value_range = 300;
  gen.seed = seed;
  return std::make_shared<const Dataset>(GenerateSyntheticNumeric(gen));
}

struct AlgoCase {
  std::string label;
  std::function<std::unique_ptr<Crawler>()> make_crawler;
  bool categorical;
};

std::vector<AlgoCase> AllAlgorithms() {
  return {
      {"rank_shrink", [] { return std::make_unique<RankShrink>(); }, false},
      {"binary_shrink", [] { return std::make_unique<BinaryShrink>(); },
       false},
      {"dfs", [] { return std::make_unique<DfsCrawler>(); }, true},
      {"slice_cover",
       [] { return std::make_unique<SliceCoverCrawler>(false); }, true},
      {"lazy_slice_cover",
       [] { return std::make_unique<SliceCoverCrawler>(true); }, true},
      {"hybrid", [] { return std::make_unique<HybridCrawler>(); }, true},
  };
}

// The acceptance gate: for every algorithm, one service session with an
// audit log reproduces the LocalServer + QueryLogServer transcript byte
// for byte.
TEST(CrawlServiceTest, SingleSessionTranscriptMatchesLocalServer) {
  for (const AlgoCase& algo : AllAlgorithms()) {
    auto data = algo.categorical ? CategoricalData() : NumericData();
    const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());

    // Classic stack: a private LocalServer behind a QueryLogServer.
    std::ostringstream classic_log;
    LocalServer server(data, k);
    QueryLogServer logged(&server, &classic_log);
    CrawlResult classic = algo.make_crawler()->Crawl(&logged);
    ASSERT_TRUE(classic.status.ok())
        << algo.label << ": " << classic.status.ToString();

    // Service stack: one session, same ranking (both default-seeded).
    std::ostringstream session_log;
    CrawlService service(data, k);
    SessionOptions options;
    options.query_log = &session_log;
    auto session = service.CreateSession(options);
    CrawlResult result = algo.make_crawler()->Crawl(session.get());
    ASSERT_TRUE(result.status.ok())
        << algo.label << ": " << result.status.ToString();

    EXPECT_EQ(classic_log.str(), session_log.str())
        << algo.label
        << ": a single-session service must reproduce the sequential "
        << "conversation byte for byte";
    EXPECT_EQ(classic.queries_issued, result.queries_issued) << algo.label;
    EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data))
        << algo.label;
    EXPECT_EQ(session->queries_served(), result.queries_issued) << algo.label;
    EXPECT_EQ(session->logged(), session->queries_served()) << algo.label;
  }
}

TEST(CrawlServiceTest, SessionsMeterIndependently) {
  auto data = CategoricalData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlService service(data, k);

  auto first = service.CreateSession();
  auto second = service.CreateSession();
  EXPECT_EQ(service.sessions_created(), 2u);
  EXPECT_NE(first->id(), second->id());

  DfsCrawler dfs;
  CrawlResult r1 = dfs.Crawl(first.get());
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(first->queries_served(), r1.queries_issued);
  EXPECT_EQ(second->queries_served(), 0u)
      << "an idle session must not be billed for another's crawl";

  SliceCoverCrawler lazy(true);
  CrawlResult r2 = lazy.Crawl(second.get());
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(first->queries_served(), r1.queries_issued);
  EXPECT_EQ(second->queries_served(), r2.queries_issued);
  EXPECT_GT(second->tuples_returned(), 0u);
}

TEST(CrawlServiceTest, SessionBudgetInterruptsAndRefills) {
  auto data = CategoricalData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlService service(data, k);

  SessionOptions options;
  options.max_queries = 25;
  auto session = service.CreateSession(options);
  EXPECT_EQ(session->budget_remaining(), 25u);

  DfsCrawler dfs;
  CrawlResult result = dfs.Crawl(session.get());
  ASSERT_TRUE(result.status.IsResourceExhausted())
      << result.status.ToString();
  ASSERT_NE(result.resume_state, nullptr);
  EXPECT_EQ(session->queries_served(), 25u);
  EXPECT_EQ(session->budget_remaining(), 0u);

  // A fresh allotment lets the same crawl resume to completion; other
  // sessions never saw the quota.
  while (result.status.IsResourceExhausted()) {
    session->RefillBudget(25);
    result = dfs.Resume(session.get(), result.resume_state);
  }
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  EXPECT_EQ(session->queries_served(), result.queries_issued);

  // An unbudgeted session reports an unlimited allowance.
  auto unmetered = service.CreateSession();
  EXPECT_EQ(unmetered->budget_remaining(), kUnlimitedQueries);
}

TEST(CrawlServiceTest, SessionTraceAndObserver) {
  auto data = CategoricalData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlService service(data, k);

  uint64_t observed = 0;
  SessionOptions options;
  options.keep_trace = true;
  options.observer = [&observed](const Query&, const Response&) {
    ++observed;
  };
  options.label = "traced";
  auto session = service.CreateSession(options);
  EXPECT_EQ(session->label(), "traced");

  DfsCrawler dfs;
  CrawlResult result = dfs.Crawl(session.get());
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(session->trace().size(), result.queries_issued);
  EXPECT_EQ(observed, result.queries_issued);
}

TEST(CrawlServiceTest, SchemaOverrideSessionCrawlsTheNarrowedView) {
  auto data = NumericData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlService service(data, k);

  // Narrow attribute 0 to the lower half of its domain.
  std::vector<AttributeSpec> attrs;
  for (size_t i = 0; i < data->schema()->num_attributes(); ++i) {
    attrs.push_back(data->schema()->attribute(i));
  }
  const Value mid = (attrs[0].lo + attrs[0].hi) / 2;
  attrs[0].hi = mid;
  SessionOptions options;
  options.schema_override = Schema::Make(std::move(attrs));
  auto session = service.CreateSession(options);

  RankShrink rank;
  CrawlResult result = rank.Crawl(session.get());
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  // The extraction is exactly the narrowed slice of the dataset.
  size_t expected = 0;
  for (size_t i = 0; i < data->size(); ++i) {
    if (data->tuple(i)[0] <= mid) ++expected;
  }
  EXPECT_EQ(result.extracted.size(), expected);
  for (size_t i = 0; i < result.extracted.size(); ++i) {
    EXPECT_LE(result.extracted.tuple(i)[0], mid);
  }
}

TEST(CrawlServiceTest, SharedIndexServesManyServers) {
  auto data = CategoricalData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  auto index = std::make_shared<const LocalIndex>(data, k);

  // Two LocalServers and a service over one index: identical conversations,
  // independent statistics.
  LocalServer a(index), b(index);
  CrawlService service(index);
  auto session = service.CreateSession();

  DfsCrawler dfs;
  CrawlResult ra = dfs.Crawl(&a);
  CrawlResult rb = dfs.Crawl(&b);
  CrawlResult rs = dfs.Crawl(session.get());
  ASSERT_TRUE(ra.status.ok());
  EXPECT_EQ(ra.queries_issued, rb.queries_issued);
  EXPECT_EQ(ra.queries_issued, rs.queries_issued);
  EXPECT_EQ(a.queries_served(), b.queries_served());
  EXPECT_EQ(a.queries_served(), session->queries_served());
  EXPECT_TRUE(Dataset::MultisetEquals(rs.extracted, *data));
}

TEST(CrawlServiceTest, AutoBatchSizeKeepsExtractionAndCost) {
  auto data = CategoricalData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());

  for (const AlgoCase& algo : AllAlgorithms()) {
    if (!algo.categorical) continue;
    // Reference: sequential conversation over a single-lane service.
    CrawlService sequential(data, k);
    auto seq_session = sequential.CreateSession();
    CrawlResult reference = algo.make_crawler()->Crawl(seq_session.get());
    ASSERT_TRUE(reference.status.ok()) << algo.label;

    // Auto batch over a parallel service: same cost, same extraction.
    CrawlServiceOptions wide;
    wide.max_parallelism = 4;
    CrawlService parallel(data, k, nullptr, wide);
    auto par_session = parallel.CreateSession();
    CrawlOptions options;
    options.batch_size = 0;  // auto
    CrawlResult result = algo.make_crawler()->Crawl(par_session.get(),
                                                    options);
    ASSERT_TRUE(result.status.ok()) << algo.label;
    EXPECT_EQ(result.queries_issued, reference.queries_issued) << algo.label;
    EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data))
        << algo.label;
  }
}

// Auto batch against a single-lane server degenerates to round size 1 and
// must stay byte-identical to the sequential transcript.
TEST(CrawlServiceTest, AutoBatchOnSingleLaneIsSequential) {
  auto data = CategoricalData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());

  std::ostringstream sequential_log, auto_log;
  {
    LocalServer server(data, k);
    QueryLogServer logged(&server, &sequential_log);
    DfsCrawler dfs;
    ASSERT_TRUE(dfs.Crawl(&logged).status.ok());
  }
  {
    CrawlService service(data, k);  // max_parallelism = 1
    SessionOptions options;
    options.query_log = &auto_log;
    auto session = service.CreateSession(options);
    DfsCrawler dfs;
    CrawlOptions crawl;
    crawl.batch_size = 0;  // auto
    ASSERT_TRUE(dfs.Crawl(session.get(), crawl).status.ok());
  }
  EXPECT_EQ(sequential_log.str(), auto_log.str());
}

TEST(CrawlServiceDeathTest, ZeroParallelismIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto data = CategoricalData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());

  EXPECT_DEATH(
      {
        CrawlServiceOptions options;
        options.max_parallelism = 0;
        CrawlService service(data, k, nullptr, options);
      },
      "max_parallelism must be >= 1");
  EXPECT_DEATH(
      {
        LocalServerOptions options;
        options.max_parallelism = 0;
        LocalServer server(data, k, nullptr, options);
      },
      "max_parallelism must be >= 1");
}

// The service-operator view: MetricsSnapshot reports live sessions with
// their own accounting, remembers retired sessions' totals, and never
// mixes the two up.
TEST(CrawlServiceTest, MetricsSnapshotTracksSessionsAndTotals) {
  auto data = CategoricalData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlServiceOptions options;
  options.max_parallelism = 2;
  CrawlService service(data, k, nullptr, options);

  SessionOptions metered;
  metered.label = "metered";
  metered.max_queries = 1000;
  metered.weight = 3;
  auto first = service.CreateSession(metered);
  auto second = service.CreateSession();

  DfsCrawler dfs;
  CrawlResult r1 = dfs.Crawl(first.get());
  ASSERT_TRUE(r1.status.ok());

  CrawlServiceMetrics metrics = service.MetricsSnapshot();
  EXPECT_EQ(metrics.sessions_created, 2u);
  EXPECT_EQ(metrics.sessions_active, 2u);
  EXPECT_EQ(metrics.pool_threads, 1u);
  EXPECT_EQ(metrics.queries_served, r1.queries_issued);
  EXPECT_GT(metrics.queries_per_second, 0.0);
  ASSERT_EQ(metrics.sessions.size(), 2u);
  EXPECT_EQ(metrics.sessions[0].label, "metered");
  EXPECT_EQ(metrics.sessions[0].weight, 3u);
  EXPECT_EQ(metrics.sessions[0].queries_served, r1.queries_issued);
  EXPECT_EQ(metrics.sessions[0].budget_remaining,
            1000u - r1.queries_issued);
  EXPECT_EQ(metrics.sessions[1].queries_served, 0u);
  EXPECT_EQ(metrics.sessions[1].budget_remaining, kUnlimitedQueries);

  // Retiring a session moves its bill into the service totals.
  first.reset();
  metrics = service.MetricsSnapshot();
  EXPECT_EQ(metrics.sessions_active, 1u);
  EXPECT_EQ(metrics.sessions_created, 2u);
  EXPECT_EQ(metrics.queries_served, r1.queries_issued);
  ASSERT_EQ(metrics.sessions.size(), 1u);
  EXPECT_EQ(metrics.sessions[0].queries_served, 0u);
}

// First shape of crawl-session persistence: a crawl interrupted inside a
// schema_override session checkpoints under the *narrowed* schema, and the
// checkpoint must load back when the resuming process only holds the
// service's full schema — then finish, in a fresh session, with exactly
// the conversation the uninterrupted crawl would have had.
TEST(CrawlServiceTest, SessionResumeRoundTripAcrossNarrowedSchema) {
  auto data = NumericData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlService service(data, k);

  std::vector<AttributeSpec> attrs;
  for (size_t i = 0; i < data->schema()->num_attributes(); ++i) {
    attrs.push_back(data->schema()->attribute(i));
  }
  const Value mid = (attrs[0].lo + attrs[0].hi) / 2;
  attrs[0].hi = mid;
  SchemaPtr narrowed = Schema::Make(std::move(attrs));

  // Uninterrupted ground truth over the narrowed view.
  BinaryShrink crawler;
  SessionOptions view;
  view.schema_override = narrowed;
  CrawlResult uninterrupted(narrowed);
  {
    auto session = service.CreateSession(view);
    uninterrupted = crawler.Crawl(session.get());
    ASSERT_TRUE(uninterrupted.status.ok())
        << uninterrupted.status.ToString();
  }

  // Interrupt the same crawl mid-flight and checkpoint it — under the
  // session's (narrowed) schema, the space the crawl runs in.
  std::stringstream checkpoint;
  uint64_t spent = 0;
  {
    auto session = service.CreateSession(view);
    CrawlOptions budget;
    budget.max_queries = 20;
    CrawlResult partial = crawler.Crawl(session.get(), budget);
    ASSERT_TRUE(partial.status.IsResourceExhausted())
        << partial.status.ToString();
    ASSERT_NE(partial.resume_state, nullptr);
    spent = partial.queries_issued;
    ASSERT_TRUE(SaveCheckpoint(*partial.resume_state, *session->schema(),
                               &checkpoint)
                    .ok());
  }

  // A fresh process restores it holding only the service's full schema:
  // the compatible narrowed schema is accepted and the state comes back
  // bound to it.
  std::shared_ptr<CrawlState> restored;
  Status load = LoadCheckpoint(&checkpoint, service.schema(), &restored);
  ASSERT_TRUE(load.ok()) << load.ToString();
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(*restored->extracted.schema() == *narrowed);
  EXPECT_EQ(restored->queries_issued, spent);

  // Resume in a fresh session presenting the restored state's own view.
  SessionOptions resumed_view;
  resumed_view.schema_override = restored->extracted.schema();
  auto session = service.CreateSession(resumed_view);
  CrawlResult done = crawler.Resume(session.get(), restored);
  ASSERT_TRUE(done.status.ok()) << done.status.ToString();
  EXPECT_EQ(done.queries_issued, uninterrupted.queries_issued)
      << "interrupt + resume must not change the total query bill";
  EXPECT_TRUE(
      Dataset::MultisetEquals(done.extracted, uninterrupted.extracted));
}

TEST(CrawlServiceDeathTest, RefillWithoutBudgetIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto data = CategoricalData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlService service(data, k);
  auto session = service.CreateSession();
  EXPECT_DEATH(session->RefillBudget(10), "without max_queries");
}

}  // namespace
}  // namespace hdc
