// Copyright (c) hdc authors. Apache-2.0 license.
//
// Fuzz harness for the v2 wire-frame decoders (net/frame.h) — the exact
// surface a hostile peer controls. The first input byte selects a decoder,
// the rest is fed to it as a raw payload; every decoder must return a typed
// error (never crash, never read out of bounds, never allocate a claimed
// length unchecked) on arbitrary bytes. DecodeQueryBatch and DecodeResponse
// run against a fixed mixed schema so the schema-validation paths
// (categorical pin/full-range forms, numeric extents, hash verification)
// are all reachable.
//
// Build shapes (tests/fuzz/CMakeLists.txt):
//   - clang + HDC_BUILD_FUZZERS: libFuzzer entry point (HDC_HAVE_LIBFUZZER),
//     run `frame_decode_fuzz -runs=N corpus/` for a bounded smoke;
//   - any compiler: standalone driver replaying corpus files/dirs, which is
//     the tier-1 `frame_decode_fuzz_replay` ctest; `--generate DIR` rebuilds
//     the seed corpus from Encode* round-trips of representative messages.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "net/frame.h"
#include "server/answer_cache.h"
#include "server/response.h"

namespace {

using hdc::AttributeSpec;
using hdc::Query;
using hdc::Response;
using hdc::Schema;
using hdc::SchemaPtr;
using hdc::Status;

/// One schema for every fuzz run: a categorical attribute (domain 5) next
/// to a bounded numeric one, covering both validation branches of
/// DecodeQueryBatch.
const SchemaPtr& FuzzSchema() {
  static const SchemaPtr schema = Schema::Make(
      {AttributeSpec::Categorical("make", 5),
       AttributeSpec::NumericBounded("price", 0, 1000)});
  return schema;
}

void FuzzOne(const uint8_t* data, size_t size) {
  if (size == 0) return;
  const uint8_t selector = data[0];
  const std::string payload(reinterpret_cast<const char*>(data + 1),
                            size - 1);

  switch (selector % 8) {
    case 0: {
      hdc::net::HelloMessage msg;
      (void)hdc::net::DecodeHello(payload, &msg);
      break;
    }
    case 1: {
      hdc::net::WelcomeMessage msg;
      (void)hdc::net::DecodeWelcome(payload, &msg);
      break;
    }
    case 2: {
      hdc::net::BatchEndMessage msg;
      (void)hdc::net::DecodeBatchEnd(payload, &msg);
      break;
    }
    case 3: {
      hdc::net::StatsMessage msg;
      (void)hdc::net::DecodeStats(payload, &msg);
      break;
    }
    case 4: {
      std::vector<Query> queries;
      (void)hdc::net::DecodeQueryBatch(payload, FuzzSchema(), &queries);
      break;
    }
    case 5: {
      Response response;
      uint64_t hash = 0;
      (void)hdc::net::DecodeResponse(
          payload, FuzzSchema()->num_attributes(), &response, &hash);
      break;
    }
    case 6: {
      uint64_t max_queries = 0;
      (void)hdc::net::DecodeRefill(payload, &max_queries);
      break;
    }
    case 7: {
      Status status;
      (void)hdc::net::DecodeAck(payload, &status);
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  FuzzOne(data, size);
  return 0;
}

#if !defined(HDC_HAVE_LIBFUZZER)

// Standalone driver: replays corpus files (regression mode, registered as
// the tier-1 `frame_decode_fuzz_replay` ctest) and regenerates the seed
// corpus. libFuzzer builds get their main() from the sanitizer runtime.

#include <filesystem>
#include <fstream>
#include <iostream>

namespace {

namespace fs = std::filesystem;

int ReplayFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  FuzzOne(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

int Replay(const std::vector<std::string>& args) {
  size_t replayed = 0;
  for (const std::string& arg : args) {
    const fs::path path(arg);
    if (fs::is_directory(path)) {
      for (const fs::directory_entry& entry : fs::directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        if (ReplayFile(entry.path()) != 0) return 1;
        ++replayed;
      }
    } else {
      if (ReplayFile(path) != 0) return 1;
      ++replayed;
    }
  }
  std::cout << "frame_decode_fuzz: replayed " << replayed
            << " input(s), no crash\n";
  return 0;
}

void WriteSeed(const fs::path& dir, const std::string& name,
               uint8_t selector, const std::string& payload) {
  std::ofstream out(dir / name, std::ios::binary);
  out.put(static_cast<char>(selector));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

/// Seeds are Encode* round-trips of representative messages — the same
/// shapes frame_codec_test exercises — so the fuzzer starts from valid
/// frames and mutates toward the edges instead of rediscovering the
/// format from zero.
int Generate(const std::string& dir_arg) {
  const fs::path dir(dir_arg);
  fs::create_directories(dir);

  hdc::net::HelloMessage hello;
  hello.max_queries = 250;
  hello.weight = 3;
  hello.max_lane_parallelism = 2;
  hello.label = "fuzz-seed";
  WriteSeed(dir, "hello", 0, hdc::net::EncodeHello(hello));

  hdc::net::WelcomeMessage welcome;
  welcome.session_id = 7;
  welcome.k = 100;
  welcome.batch_parallelism = 4;
  welcome.db_version = 3;
  for (size_t i = 0; i < FuzzSchema()->num_attributes(); ++i) {
    welcome.attributes.push_back(FuzzSchema()->attribute(i));
  }
  WriteSeed(dir, "welcome", 1, hdc::net::EncodeWelcome(welcome));

  hdc::net::BatchEndMessage end;
  end.code = Status::Code::kResourceExhausted;
  end.message = "query budget of 250 queries exhausted";
  end.queue_wait_total_seconds = 0.125;
  end.db_version = 3;
  WriteSeed(dir, "batch_end", 2, hdc::net::EncodeBatchEnd(end));

  hdc::net::StatsMessage stats;
  stats.queries_served = 42;
  stats.tuples_returned = 1234;
  stats.overflow_count = 5;
  stats.budget_remaining = 208;
  WriteSeed(dir, "stats", 3, hdc::net::EncodeStats(stats));

  // One wildcard query, one restricted: both legal categorical forms.
  const Query wildcard = Query::FullSpace(FuzzSchema());
  const Query restricted =
      wildcard.WithCategoricalEquals(0, 2).WithNumericRange(1, 10, 500);
  WriteSeed(dir, "query_batch", 4,
            hdc::net::EncodeQueryBatch({wildcard, restricted}));

  Response response;
  response.overflow = true;
  response.tuples.push_back({{1, 250}, 11});
  response.tuples.push_back({{5, 999}, 12});
  WriteSeed(dir, "response_plain", 5, hdc::net::EncodeResponse(response));
  const uint64_t hash = hdc::HashResponse(response);
  WriteSeed(dir, "response_hashed", 5,
            hdc::net::EncodeResponse(response, &hash));

  WriteSeed(dir, "refill", 6, hdc::net::EncodeRefill(500));
  WriteSeed(dir, "ack", 7,
            hdc::net::EncodeAck(Status::FailedPrecondition(
                "session was created without a budget")));

  std::cout << "frame_decode_fuzz: wrote seed corpus to " << dir << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 2 && args[0] == "--generate") {
    return Generate(args[1]);
  }
  if (args.empty()) {
    std::cerr << "usage: " << argv[0]
              << " <corpus file or dir>... | --generate <dir>\n";
    return 2;
  }
  return Replay(args);
}

#endif  // !HDC_HAVE_LIBFUZZER
