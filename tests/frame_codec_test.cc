// Copyright (c) hdc authors. Apache-2.0 license.
//
// Unit tests of the wire codec (net/frame.h): every message round-trips
// losslessly, and every malformed payload — truncation, trailing bytes,
// implausible counts, illegal query extents — is rejected with a typed
// error instead of being trusted.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/frame.h"
#include "server/answer_cache.h"

namespace hdc {
namespace net {
namespace {

SchemaPtr MixedSchema() {
  return Schema::Make({AttributeSpec::Categorical("Make", 5),
                       AttributeSpec::NumericBounded("Price", 0, 1000),
                       AttributeSpec::Numeric("Mileage")});
}

TEST(WireScalarTest, RoundTripsAndBoundsChecks) {
  WireWriter w;
  w.PutU8(7);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutDouble(3.25);
  w.PutString("hdc");

  WireReader r(w.data());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetI64(&i64));
  ASSERT_TRUE(r.GetDouble(&d));
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(u8, 7u);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(s, "hdc");

  // Reading past the end fails instead of inventing bytes.
  uint64_t extra;
  EXPECT_FALSE(r.GetU64(&extra));
}

TEST(WireScalarTest, StringLengthBeyondPayloadIsRejected) {
  WireWriter w;
  w.PutU32(1000);  // claims 1000 bytes follow
  w.PutU8('x');
  WireReader r(w.data());
  std::string s;
  EXPECT_FALSE(r.GetString(&s));
}

TEST(HelloCodecTest, RoundTrip) {
  HelloMessage hello;
  hello.max_queries = 12345;
  hello.weight = 3;
  hello.max_lane_parallelism = 2;
  hello.label = "tenant-a";
  HelloMessage decoded;
  ASSERT_TRUE(DecodeHello(EncodeHello(hello), &decoded).ok());
  EXPECT_EQ(decoded.max_queries, 12345u);
  EXPECT_EQ(decoded.weight, 3u);
  EXPECT_EQ(decoded.max_lane_parallelism, 2u);
  EXPECT_EQ(decoded.label, "tenant-a");
}

TEST(HelloCodecTest, WrongMagicOrVersionRefused) {
  HelloMessage hello;
  hello.magic = 0x12345678;
  HelloMessage out;
  EXPECT_EQ(DecodeHello(EncodeHello(hello), &out).code(),
            Status::Code::kFailedPrecondition);

  hello.magic = kProtocolMagic;
  hello.version = kProtocolVersion + 1;
  EXPECT_EQ(DecodeHello(EncodeHello(hello), &out).code(),
            Status::Code::kFailedPrecondition);
}

TEST(WelcomeCodecTest, RoundTripsSchema) {
  SchemaPtr schema = MixedSchema();
  WelcomeMessage welcome;
  welcome.session_id = 9;
  welcome.k = 100;
  welcome.batch_parallelism = 4;
  welcome.db_version = 77;
  for (size_t i = 0; i < schema->num_attributes(); ++i) {
    welcome.attributes.push_back(schema->attribute(i));
  }
  WelcomeMessage decoded;
  ASSERT_TRUE(DecodeWelcome(EncodeWelcome(welcome), &decoded).ok());
  EXPECT_EQ(decoded.session_id, 9u);
  EXPECT_EQ(decoded.k, 100u);
  EXPECT_EQ(decoded.batch_parallelism, 4u);
  EXPECT_EQ(decoded.db_version, 77u);
  SchemaPtr rebuilt = Schema::Make(decoded.attributes);
  EXPECT_TRUE(*rebuilt == *schema)
      << "schema must survive the wire byte-for-byte: "
      << rebuilt->ToString();
}

TEST(WelcomeCodecTest, TruncatedPayloadRejected) {
  WelcomeMessage welcome;
  welcome.k = 10;
  welcome.batch_parallelism = 1;
  welcome.attributes.push_back(AttributeSpec::Categorical("A", 4));
  std::string wire = EncodeWelcome(welcome);
  WelcomeMessage out;
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    EXPECT_FALSE(DecodeWelcome(wire.substr(0, wire.size() - cut), &out).ok())
        << "truncated by " << cut << " bytes";
  }
  EXPECT_FALSE(DecodeWelcome(wire + "x", &out).ok()) << "trailing bytes";
}

TEST(QueryBatchCodecTest, RoundTrip) {
  SchemaPtr schema = MixedSchema();
  std::vector<Query> batch;
  batch.push_back(Query::FullSpace(schema));
  batch.push_back(Query::FullSpace(schema).WithCategoricalEquals(0, 3));
  batch.push_back(Query::FullSpace(schema)
                      .WithNumericRange(1, 100, 200)
                      .WithNumericRange(2, -50, 50));
  std::vector<Query> decoded;
  ASSERT_TRUE(
      DecodeQueryBatch(EncodeQueryBatch(batch), schema, &decoded).ok());
  ASSERT_EQ(decoded.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(decoded[i] == batch[i]) << decoded[i].ToString();
  }
}

TEST(QueryBatchCodecTest, IllegalExtentsRejected) {
  SchemaPtr schema = MixedSchema();
  // Hand-craft a categorical range that is neither wildcard nor pinned:
  // [2, 4] on a domain of 5.
  WireWriter w;
  w.PutU32(1);
  w.PutI64(2);
  w.PutI64(4);  // categorical: illegal
  w.PutI64(0);
  w.PutI64(1000);
  w.PutI64(-100);
  w.PutI64(100);
  std::vector<Query> out;
  Status s = DecodeQueryBatch(w.data(), schema, &out);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();

  // Pinned value outside the domain.
  WireWriter w2;
  w2.PutU32(1);
  w2.PutI64(9);
  w2.PutI64(9);  // categorical pinned to 9, domain is 5
  w2.PutI64(0);
  w2.PutI64(1000);
  w2.PutI64(-100);
  w2.PutI64(100);
  EXPECT_FALSE(DecodeQueryBatch(w2.data(), schema, &out).ok());

  // Inverted numeric range.
  WireWriter w3;
  w3.PutU32(1);
  w3.PutI64(1);
  w3.PutI64(1);
  w3.PutI64(200);
  w3.PutI64(100);  // lo > hi
  w3.PutI64(-100);
  w3.PutI64(100);
  EXPECT_FALSE(DecodeQueryBatch(w3.data(), schema, &out).ok());

}

TEST(QueryBatchCodecTest, OutOfExtentNumericProbesAreLegal) {
  // Numeric bounds are crawler knowledge, not a server contract
  // (Schema::CompatibleWith): a probe beyond Price's declared [0, 1000]
  // must decode — in-process servers answer it (empty or not) and the
  // remote transport must converse identically.
  SchemaPtr schema = MixedSchema();
  std::vector<Query> batch;
  batch.push_back(
      Query::FullSpace(schema).WithNumericRange(1, -5000, 5000));
  std::vector<Query> decoded;
  ASSERT_TRUE(
      DecodeQueryBatch(EncodeQueryBatch(batch), schema, &decoded).ok());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(decoded[0] == batch[0]);
}

TEST(QueryBatchCodecTest, CountBeyondPayloadRejected) {
  SchemaPtr schema = MixedSchema();
  WireWriter w;
  w.PutU32(1000000);  // claims a million queries in a tiny payload
  std::vector<Query> out;
  EXPECT_FALSE(DecodeQueryBatch(w.data(), schema, &out).ok());
}

TEST(ResponseCodecTest, RoundTrip) {
  Response response;
  response.overflow = true;
  for (uint64_t id = 0; id < 3; ++id) {
    ReturnedTuple rt;
    rt.hidden_id = 1000 + id;
    rt.tuple = Tuple{static_cast<Value>(id), 7, -9};
    response.tuples.push_back(rt);
  }
  Response decoded;
  ASSERT_TRUE(
      DecodeResponse(EncodeResponse(response), /*arity=*/3, &decoded).ok());
  EXPECT_TRUE(decoded.overflow);
  ASSERT_EQ(decoded.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.tuples[i].hidden_id, response.tuples[i].hidden_id);
    EXPECT_EQ(decoded.tuples[i].tuple, response.tuples[i].tuple);
  }
}

TEST(ResponseCodecTest, ContentHashRoundTripsAndIsVerified) {
  Response response;
  for (uint64_t id = 0; id < 2; ++id) {
    ReturnedTuple rt;
    rt.hidden_id = id;
    rt.tuple = Tuple{static_cast<Value>(id * 3), 1, 2};
    response.tuples.push_back(rt);
  }
  const uint64_t hash = HashResponse(response);
  const std::string wire = EncodeResponse(response, &hash);

  Response decoded;
  uint64_t decoded_hash = 0;
  ASSERT_TRUE(DecodeResponse(wire, 3, &decoded, &decoded_hash).ok());
  EXPECT_EQ(decoded_hash, hash);
  ASSERT_EQ(decoded.size(), 2u);

  // The hash is also verified when the caller does not ask for it back.
  ASSERT_TRUE(DecodeResponse(wire, 3, &decoded).ok());

  // Any flipped content byte must be rejected — a corrupt frame may never
  // seed a cache with a plausible-looking answer.
  for (size_t i = 0; i < wire.size(); ++i) {
    std::string tampered = wire;
    tampered[i] ^= 0x01;
    Status s = DecodeResponse(tampered, 3, &decoded);
    EXPECT_FALSE(s.ok()) << "flipping byte " << i << " went unnoticed";
  }

  // A hash-less frame (old-style peer with hashes disabled) still decodes.
  Response plain_decoded;
  ASSERT_TRUE(
      DecodeResponse(EncodeResponse(response), 3, &plain_decoded).ok());
  EXPECT_EQ(plain_decoded.size(), 2u);
}

TEST(ResponseCodecTest, CountBeyondPayloadRejected) {
  WireWriter w;
  w.PutU8(0);
  w.PutU32(50000);
  Response out;
  EXPECT_FALSE(DecodeResponse(w.data(), 3, &out).ok());
}

TEST(BatchEndCodecTest, RoundTripsEveryStatusCode) {
  for (Status::Code code :
       {Status::Code::kOk, Status::Code::kResourceExhausted,
        Status::Code::kInternal, Status::Code::kUnavailable,
        Status::Code::kFailedPrecondition}) {
    BatchEndMessage end;
    end.code = code;
    end.message = code == Status::Code::kOk ? "" : "why it stopped";
    end.queue_wait_total_seconds = 0.125;
    end.db_version = 42;
    BatchEndMessage decoded;
    ASSERT_TRUE(DecodeBatchEnd(EncodeBatchEnd(end), &decoded).ok());
    EXPECT_EQ(decoded.code, code);
    EXPECT_EQ(decoded.message, end.message);
    EXPECT_EQ(decoded.queue_wait_total_seconds, 0.125);
    EXPECT_EQ(decoded.db_version, 42u);
  }
}

TEST(BatchEndCodecTest, UnknownStatusCodeRejected) {
  WireWriter w;
  w.PutU8(250);  // no such Status::Code
  w.PutString("?");
  w.PutDouble(0);
  BatchEndMessage out;
  EXPECT_FALSE(DecodeBatchEnd(w.data(), &out).ok());
}

TEST(StatsCodecTest, RoundTrip) {
  StatsMessage stats;
  stats.queries_served = 11;
  stats.tuples_returned = 222;
  stats.overflow_count = 3;
  stats.budget_remaining = 44;
  StatsMessage decoded;
  ASSERT_TRUE(DecodeStats(EncodeStats(stats), &decoded).ok());
  EXPECT_EQ(decoded.queries_served, 11u);
  EXPECT_EQ(decoded.tuples_returned, 222u);
  EXPECT_EQ(decoded.overflow_count, 3u);
  EXPECT_EQ(decoded.budget_remaining, 44u);
}

TEST(AckCodecTest, RoundTripsStatus) {
  Status refused = Status::FailedPrecondition("no budget to refill");
  Status decoded;
  ASSERT_TRUE(DecodeAck(EncodeAck(refused), &decoded).ok());
  EXPECT_EQ(decoded, refused);

  ASSERT_TRUE(DecodeAck(EncodeAck(Status::OK()), &decoded).ok());
  EXPECT_TRUE(decoded.ok());
}

}  // namespace
}  // namespace net
}  // namespace hdc
