// Copyright (c) hdc authors. Apache-2.0 license.
//
// The streaming tuple sink: progressive delivery of confirmed tuples.
#include <gtest/gtest.h>

#include <memory>

#include "core/crawl_sink.h"
#include "core/hybrid.h"
#include "core/rank_shrink.h"
#include "core/slice_cover.h"
#include "gen/synthetic.h"
#include "server/local_server.h"

namespace hdc {
namespace {

TEST(TupleSinkTest, ReceivesExactlyTheExtraction) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 800;
  gen.value_range = 300;
  gen.seed = 61;
  auto data = std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));
  LocalServer server(data, 8);

  Dataset streamed(data->schema());
  CallbackSink sink([&streamed](const Tuple& t) { streamed.Add(t); });
  CrawlOptions options;
  options.sink = &sink;

  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&server, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(streamed, *data));
  EXPECT_TRUE(Dataset::MultisetEquals(streamed, result.extracted));
}

TEST(TupleSinkTest, DeliveryIsProgressive) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {5, 6};
  gen.num_numeric = 1;
  gen.n = 900;
  gen.value_range = 150;
  gen.seed = 62;
  auto data = std::make_shared<Dataset>(GenerateSyntheticMixed(gen));
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  LocalServer server(data, k);

  // Sample the stream size at every server response.
  size_t delivered = 0;
  std::vector<size_t> samples;
  CallbackSink sink([&delivered](const Tuple&) { ++delivered; });
  CrawlOptions options;
  options.sink = &sink;

  HybridCrawler crawler;
  // Use the trace to know how many queries ran; sample via a second crawl
  // would race — instead assert the sink fired before the crawl ended by
  // bounding with a mid-crawl budget.
  options.max_queries = 10;
  CrawlResult partial = crawler.Crawl(&server, options);
  ASSERT_TRUE(partial.status.IsResourceExhausted());
  EXPECT_GT(delivered, 0u) << "tuples must stream before completion";
  EXPECT_EQ(delivered, partial.extracted.size());

  options.max_queries = UINT64_MAX;
  CrawlResult done = crawler.Resume(&server, partial.resume_state, options);
  ASSERT_TRUE(done.status.ok());
  EXPECT_EQ(delivered, done.extracted.size());
  EXPECT_TRUE(Dataset::MultisetEquals(done.extracted, *data));
}

TEST(TupleSinkTest, SliceCoverLocalAnswersAlsoStream) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {6, 9};
  gen.n = 600;
  gen.seed = 63;
  auto data = std::make_shared<Dataset>(GenerateSyntheticCategorical(gen));
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  LocalServer server(data, k);

  size_t delivered = 0;
  CallbackSink sink([&delivered](const Tuple&) { ++delivered; });
  CrawlOptions options;
  options.sink = &sink;
  SliceCoverCrawler crawler(/*lazy=*/true);
  CrawlResult result = crawler.Crawl(&server, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(delivered, data->size());
}

}  // namespace
}  // namespace hdc
