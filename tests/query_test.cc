// Copyright (c) hdc authors. Apache-2.0 license.
#include "query/query.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace hdc {
namespace {

SchemaPtr MixedSchema() {
  return Schema::Make({
      AttributeSpec::Categorical("C1", 4),
      AttributeSpec::NumericBounded("N1", 0, 100),
      AttributeSpec::Categorical("C2", 3),
  });
}

TEST(QueryTest, FullSpaceIsAllWildcards) {
  Query q = Query::FullSpace(MixedSchema());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(q.IsWildcard(i)) << i;
    EXPECT_FALSE(q.IsPinned(i));
  }
  EXPECT_FALSE(q.IsPoint());
  EXPECT_EQ(q.NumPinned(), 0u);
}

TEST(QueryTest, FullSpaceUnboundedNumericUsesSentinels) {
  Query q = Query::FullSpace(Schema::Numeric(1));
  EXPECT_EQ(q.lo(0), kNumericMin);
  EXPECT_EQ(q.hi(0), kNumericMax);
}

TEST(QueryTest, CategoricalEqualsPins) {
  Query q = Query::FullSpace(MixedSchema()).WithCategoricalEquals(0, 3);
  EXPECT_TRUE(q.IsPinned(0));
  EXPECT_FALSE(q.IsWildcard(0));
  EXPECT_EQ(q.lo(0), 3);
  EXPECT_EQ(q.hi(0), 3);
}

TEST(QueryTest, CategoricalWildcardResets) {
  Query q = Query::FullSpace(MixedSchema())
                .WithCategoricalEquals(0, 3)
                .WithCategoricalWildcard(0);
  EXPECT_TRUE(q.IsWildcard(0));
}

TEST(QueryTest, NumericRangeRestricts) {
  Query q = Query::FullSpace(MixedSchema()).WithNumericRange(1, 10, 20);
  EXPECT_FALSE(q.IsWildcard(1));
  EXPECT_EQ(q.lo(1), 10);
  EXPECT_EQ(q.hi(1), 20);
  EXPECT_FALSE(q.IsPinned(1));
  EXPECT_TRUE(q.WithNumericRange(1, 15, 15).IsPinned(1));
}

TEST(QueryTest, MatchesRespectsAllPredicates) {
  Query q = Query::FullSpace(MixedSchema())
                .WithCategoricalEquals(0, 2)
                .WithNumericRange(1, 10, 20);
  EXPECT_TRUE(q.Matches(Tuple({2, 10, 1})));
  EXPECT_TRUE(q.Matches(Tuple({2, 20, 3})));
  EXPECT_FALSE(q.Matches(Tuple({1, 15, 1})));  // wrong categorical
  EXPECT_FALSE(q.Matches(Tuple({2, 9, 1})));   // below range
  EXPECT_FALSE(q.Matches(Tuple({2, 21, 1})));  // above range
}

TEST(QueryTest, IsPointWhenAllPinned) {
  Query q = Query::FullSpace(MixedSchema())
                .WithCategoricalEquals(0, 1)
                .WithNumericRange(1, 5, 5)
                .WithCategoricalEquals(2, 2);
  EXPECT_TRUE(q.IsPoint());
  EXPECT_EQ(q.FirstNonPinnedAttribute(), std::nullopt);
}

TEST(QueryTest, FirstNonPinnedAttribute) {
  Query q = Query::FullSpace(MixedSchema()).WithCategoricalEquals(0, 1);
  EXPECT_EQ(q.FirstNonPinnedAttribute(), std::optional<size_t>(1));
}

TEST(QueryTest, ContainsAndIntersects) {
  Query full = Query::FullSpace(MixedSchema());
  Query narrow = full.WithNumericRange(1, 10, 20);
  Query narrower = full.WithNumericRange(1, 12, 18);
  Query disjoint = full.WithNumericRange(1, 30, 40);
  EXPECT_TRUE(full.Contains(narrow));
  EXPECT_TRUE(narrow.Contains(narrower));
  EXPECT_FALSE(narrower.Contains(narrow));
  EXPECT_TRUE(narrow.Intersects(narrower));
  EXPECT_FALSE(narrow.Intersects(disjoint));
  EXPECT_TRUE(full.Intersects(disjoint));
}

TEST(QueryTest, SliceQueryDetection) {
  SchemaPtr schema = MixedSchema();
  Query full = Query::FullSpace(schema);
  EXPECT_EQ(full.AsSliceQuery(), std::nullopt);

  Query slice = full.WithCategoricalEquals(2, 3);
  auto parsed = slice.AsSliceQuery();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, 2u);
  EXPECT_EQ(parsed->second, 3);

  // Two pinned categoricals: not a slice.
  EXPECT_EQ(slice.WithCategoricalEquals(0, 1).AsSliceQuery(), std::nullopt);
  // A narrowed numeric alongside: not a slice.
  EXPECT_EQ(slice.WithNumericRange(1, 0, 5).AsSliceQuery(), std::nullopt);
}

TEST(QueryTest, ToStringShowsPredicates) {
  Query q = Query::FullSpace(MixedSchema())
                .WithCategoricalEquals(0, 2)
                .WithNumericRange(1, 10, 20);
  std::string s = q.ToString();
  EXPECT_NE(s.find("C1=2"), std::string::npos);
  EXPECT_NE(s.find("N1 in [10, 20]"), std::string::npos);
  EXPECT_NE(s.find("C2=*"), std::string::npos);
}

TEST(QueryTest, ToStringInfinityRendering) {
  Query q = Query::FullSpace(Schema::Numeric(1));
  EXPECT_NE(q.ToString().find("-inf"), std::string::npos);
  EXPECT_NE(q.ToString().find("+inf"), std::string::npos);
}

TEST(QueryTest, HashAndEquality) {
  SchemaPtr schema = MixedSchema();
  Query a = Query::FullSpace(schema).WithCategoricalEquals(0, 2);
  Query b = Query::FullSpace(schema).WithCategoricalEquals(0, 2);
  Query c = Query::FullSpace(schema).WithCategoricalEquals(0, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);

  std::unordered_set<Query, QueryHasher> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(SplitTest, TwoWaySplitPartitionsExtent) {
  SchemaPtr schema = Schema::NumericBounded({{0, 10}});
  Query q = Query::FullSpace(schema);
  TwoWaySplitResult halves = TwoWaySplit(q, 0, 4);
  EXPECT_EQ(halves.left.lo(0), 0);
  EXPECT_EQ(halves.left.hi(0), 3);
  EXPECT_EQ(halves.right.lo(0), 4);
  EXPECT_EQ(halves.right.hi(0), 10);
}

TEST(SplitTest, ThreeWaySplitInterior) {
  SchemaPtr schema = Schema::NumericBounded({{0, 10}});
  Query q = Query::FullSpace(schema);
  ThreeWaySplitResult parts = ThreeWaySplit(q, 0, 4);
  ASSERT_TRUE(parts.left.has_value());
  ASSERT_TRUE(parts.right.has_value());
  EXPECT_EQ(parts.left->hi(0), 3);
  EXPECT_EQ(parts.mid.lo(0), 4);
  EXPECT_EQ(parts.mid.hi(0), 4);
  EXPECT_TRUE(parts.mid.IsPinned(0));
  EXPECT_EQ(parts.right->lo(0), 5);
}

TEST(SplitTest, ThreeWaySplitAtBoundsDropsEmptySides) {
  SchemaPtr schema = Schema::NumericBounded({{0, 10}});
  Query q = Query::FullSpace(schema);
  ThreeWaySplitResult at_lo = ThreeWaySplit(q, 0, 0);
  EXPECT_FALSE(at_lo.left.has_value());
  ASSERT_TRUE(at_lo.right.has_value());
  EXPECT_EQ(at_lo.right->lo(0), 1);

  ThreeWaySplitResult at_hi = ThreeWaySplit(q, 0, 10);
  EXPECT_FALSE(at_hi.right.has_value());
  ASSERT_TRUE(at_hi.left.has_value());
  EXPECT_EQ(at_hi.left->hi(0), 9);
}

TEST(SplitTest, SplitsPreserveOtherAttributes) {
  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("C", 4),
      AttributeSpec::NumericBounded("N", 0, 10),
  });
  Query q = Query::FullSpace(schema).WithCategoricalEquals(0, 2);
  TwoWaySplitResult halves = TwoWaySplit(q, 1, 5);
  EXPECT_TRUE(halves.left.IsPinned(0));
  EXPECT_EQ(halves.left.lo(0), 2);
  EXPECT_TRUE(halves.right.IsPinned(0));
}

}  // namespace
}  // namespace hdc
