// Copyright (c) hdc authors. Apache-2.0 license.
//
// WorkerPool lane scheduling: weighted round-robin dealing across lanes,
// per-lane parallelism caps, stale-entry disposal (a completed loop's
// queued helper entries are dropped, never run), and the lane accounting
// the CrawlService metrics are built on. The ordering tests pin the single
// worker down with a blocked loop, stage queues while it is busy, then
// watch the exact order it serves them — fully deterministic, no timing
// assertions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/worker_pool.h"

namespace hdc {
namespace {

/// A manually-released gate several test threads can block on.
class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Spins until `pred` holds (bounded; test fails on timeout).
template <typename Pred>
void AwaitOrFail(Pred pred, const char* what) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!pred()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << what;
    std::this_thread::yield();
  }
}

TEST(WorkerPoolTest, ZeroWorkersRunsInline) {
  WorkerPool pool(0);
  std::vector<int> hits(64, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(pool.busy_workers(), 0u);
  // Inline runs never touch the queue, so they are not in the stats.
  EXPECT_EQ(pool.lane_stats(WorkerPool::kDefaultLane).loops_submitted, 0u);
}

TEST(WorkerPoolTest, EveryItemRunsExactlyOnce) {
  WorkerPool pool(3);
  constexpr size_t kItems = 10000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.ParallelFor(kItems, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  const WorkerPool::LaneStats stats =
      pool.lane_stats(WorkerPool::kDefaultLane);
  EXPECT_EQ(stats.loops_submitted, 1u);
  EXPECT_EQ(stats.items_submitted, kItems);
  EXPECT_GE(stats.queue_wait_total_seconds, 0.0);
}

TEST(WorkerPoolTest, ConcurrentLanesEachRunTheirOwnLoop) {
  WorkerPool pool(2);
  constexpr size_t kLanes = 4, kItems = 2000;
  std::vector<WorkerPool::LaneId> lanes;
  for (size_t i = 0; i < kLanes; ++i) lanes.push_back(pool.OpenLane());
  std::vector<std::atomic<uint64_t>> sums(kLanes);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kLanes; ++t) {
    threads.emplace_back([&, t] {
      pool.ParallelFor(lanes[t], kItems,
                       [&](size_t i) { sums[t].fetch_add(i + 1); });
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& sum : sums) {
    EXPECT_EQ(sum.load(), kItems * (kItems + 1) / 2);
  }
  for (WorkerPool::LaneId lane : lanes) {
    EXPECT_EQ(pool.lane_stats(lane).items_submitted, kItems);
    pool.CloseLane(lane);
  }
  EXPECT_EQ(pool.open_lanes(), 1u);  // the default lane remains
}

TEST(WorkerPoolTest, LaneCapBoundsHelperParallelism) {
  WorkerPool pool(4);
  WorkerPool::LaneOptions capped;
  capped.max_parallelism = 1;
  const WorkerPool::LaneId lane = pool.OpenLane(capped);

  std::atomic<unsigned> running{0}, high_water{0};
  pool.ParallelFor(lane, 64, [&](size_t) {
    const unsigned now = running.fetch_add(1) + 1;
    unsigned seen = high_water.load();
    while (seen < now && !high_water.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    running.fetch_sub(1);
  });
  // At most one helper plus the calling thread may ever overlap.
  EXPECT_LE(high_water.load(), 2u);
  EXPECT_GE(high_water.load(), 1u);
  pool.CloseLane(lane);
}

// The scheduling-order scenario: a single worker is pinned inside a
// default-lane loop while three callers stage one helper entry each on two
// weighted lanes; once released, the worker must serve them weighted
// round-robin — B, B, C for weight(B) = 2, weight(C) = 1 — regardless of
// enqueue order.
TEST(WorkerPoolTest, WeightedRoundRobinDealsAcrossLanes) {
  WorkerPool pool(1);
  WorkerPool::LaneOptions heavy;
  heavy.weight = 2;
  const WorkerPool::LaneId lane_b = pool.OpenLane(heavy);
  const WorkerPool::LaneId lane_c = pool.OpenLane();

  Gate pin_gate, lane_gate;
  std::atomic<unsigned> pinned{0}, callers_blocked{0};
  std::mutex order_mutex;
  std::vector<std::string> order;

  // Pin the worker (and this loop's caller) inside the default lane.
  std::thread pin([&] {
    pool.ParallelFor(2, [&](size_t) {
      pinned.fetch_add(1);
      pin_gate.Wait();
    });
  });
  AwaitOrFail([&] { return pinned.load() == 2; }, "worker not pinned");

  // Stage the lanes while the worker is busy. Each caller claims item 0 of
  // its own loop and blocks; the queued helper entry then carries item 1,
  // which records its lane when the worker gets to it. Enqueue order (C
  // first) deliberately disagrees with the weighted service order.
  auto stage = [&](WorkerPool::LaneId lane, const char* tag) {
    pool.ParallelFor(lane, 2, [&, tag](size_t i) {
      if (i == 0) {
        callers_blocked.fetch_add(1);
        lane_gate.Wait();
      } else {
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(tag);
      }
    });
  };
  std::thread stage_c([&] { stage(lane_c, "C"); });
  AwaitOrFail([&] { return callers_blocked.load() == 1; }, "C not staged");
  std::thread stage_b1([&] { stage(lane_b, "B"); });
  std::thread stage_b2([&] { stage(lane_b, "B"); });
  AwaitOrFail([&] { return callers_blocked.load() == 3; }, "B not staged");

  // Release the worker; it drains the staged entries in weighted order.
  pin_gate.Open();
  pin.join();
  AwaitOrFail(
      [&] {
        std::lock_guard<std::mutex> lock(order_mutex);
        return order.size() == 3;
      },
      "staged entries not served");
  {
    std::lock_guard<std::mutex> lock(order_mutex);
    EXPECT_EQ(order, (std::vector<std::string>{"B", "B", "C"}));
  }
  lane_gate.Open();
  stage_c.join();
  stage_b1.join();
  stage_b2.join();
  pool.CloseLane(lane_b);
  pool.CloseLane(lane_c);
}

// A loop fully claimed by its caller before any worker gets to it leaves a
// stale queued entry; the worker must drop it at dequeue — without running
// anything — and account for the disposal.
TEST(WorkerPoolTest, CompletedLoopEntriesAreDroppedAtDequeue) {
  WorkerPool pool(1);
  const WorkerPool::LaneId lane = pool.OpenLane();

  Gate pin_gate;
  std::atomic<unsigned> pinned{0};
  std::thread pin([&] {
    pool.ParallelFor(2, [&](size_t) {
      pinned.fetch_add(1);
      pin_gate.Wait();
    });
  });
  AwaitOrFail([&] { return pinned.load() == 2; }, "worker not pinned");

  // With the only worker pinned, the caller eats both items itself; the
  // helper entry it queued goes stale.
  std::atomic<unsigned> runs{0};
  pool.ParallelFor(lane, 2, [&](size_t) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 2u);
  EXPECT_EQ(pool.lane_stats(lane).stale_dropped, 0u);  // still queued

  pin_gate.Open();
  pin.join();
  AwaitOrFail([&] { return pool.lane_stats(lane).stale_dropped == 1; },
              "stale entry not dropped");
  // The drop ran nothing: every item was executed exactly once, and the
  // loop's wait was recorded at completion, not at disposal.
  EXPECT_EQ(runs.load(), 2u);
  const WorkerPool::LaneStats stats = pool.lane_stats(lane);
  EXPECT_EQ(stats.loops_submitted, 1u);
  EXPECT_EQ(stats.helper_joins, 0u);
  EXPECT_GE(stats.queue_wait_total_seconds, 0.0);
  pool.CloseLane(lane);
}

TEST(WorkerPoolTest, CloseLaneDiscardsStaleEntriesAndFreesTheLane) {
  WorkerPool pool(1);
  Gate pin_gate;
  std::atomic<unsigned> pinned{0};
  std::thread pin([&] {
    pool.ParallelFor(2, [&](size_t) {
      pinned.fetch_add(1);
      pin_gate.Wait();
    });
  });
  AwaitOrFail([&] { return pinned.load() == 2; }, "worker not pinned");

  const WorkerPool::LaneId lane = pool.OpenLane();
  pool.ParallelFor(lane, 2, [](size_t) {});
  pool.CloseLane(lane);  // stale entry discarded with the lane
  EXPECT_EQ(pool.open_lanes(), 1u);

  pin_gate.Open();
  pin.join();
}

TEST(WorkerPoolDeathTest, SubmittingOnUnknownLaneAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  WorkerPool pool(1);
  EXPECT_DEATH(pool.ParallelFor(/*lane=*/42, 8, [](size_t) {}),
               "unknown or closed lane");
}

TEST(WorkerPoolDeathTest, ClosingTheDefaultLaneAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  WorkerPool pool(0);
  EXPECT_DEATH(pool.CloseLane(WorkerPool::kDefaultLane),
               "default lane cannot be closed");
}

}  // namespace
}  // namespace hdc
