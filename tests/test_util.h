// Copyright (c) hdc authors. Apache-2.0 license.
//
// Shared helpers for the hdc test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "core/crawler.h"
#include "data/dataset.h"
#include "server/local_server.h"
#include "server/ranking.h"

namespace hdc {
namespace testing_util {

/// Runs a complete crawl of `dataset` with `crawler` and returns
/// {result, queries issued}. Fails the current test if the crawl does not
/// complete or does not extract the exact multiset.
inline CrawlResult ExpectExactExtraction(
    Crawler* crawler, const Dataset& dataset, uint64_t k,
    std::unique_ptr<RankingPolicy> policy = nullptr,
    const CrawlOptions& options = {}) {
  auto shared = std::make_shared<Dataset>(dataset);
  LocalServer server(shared, k, std::move(policy));
  EXPECT_LE(dataset.MaxPointMultiplicity(), k)
      << "test bug: dataset is not crawlable at this k";
  CrawlResult result = crawler->Crawl(&server, options);
  EXPECT_TRUE(result.status.ok())
      << crawler->name() << ": " << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, dataset))
      << crawler->name() << " extracted " << result.extracted.size()
      << " tuples, expected " << dataset.size() << " (multiset distance "
      << Dataset::MultisetDistance(result.extracted, dataset) << ")";
  EXPECT_EQ(result.queries_issued, server.queries_served());
  return result;
}

/// Crawls with a per-run budget, resuming until complete; returns the final
/// result and the number of runs. Every run must make progress.
inline std::pair<CrawlResult, int> CrawlWithResumes(Crawler* crawler,
                                                    HiddenDbServer* server,
                                                    uint64_t budget_per_run,
                                                    int max_runs = 10000) {
  CrawlOptions options;
  options.max_queries = budget_per_run;
  CrawlResult result = crawler->Crawl(server, options);
  int runs = 1;
  while (result.status.IsResourceExhausted() && runs < max_runs) {
    EXPECT_NE(result.resume_state, nullptr);
    result = crawler->Resume(server, result.resume_state, options);
    ++runs;
  }
  return {std::move(result), runs};
}

}  // namespace testing_util
}  // namespace hdc
