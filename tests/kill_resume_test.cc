// Copyright (c) hdc authors. Apache-2.0 license.
//
// Kill-and-resume: the frontier log's headline guarantee. A crawling
// process is hard-aborted (_exit, no destructors — the moral equivalent of
// SIGKILL) at randomized round boundaries; a fresh process replays the log
// and resumes. Across every crawler family the final extraction and the
// total billed query count must be identical to an uninterrupted run, and
// no completed round may ever be billed twice.
//
// Billing accounting, per killed generation g:
//   the child's server bills queries_served() queries; the log's replayed
//   state advances from Q_g to Q_{g+1}. Zero re-billing means
//   billed_g == Q_{g+1} - Q_g exactly — every billed query is committed,
//   every committed query was billed once. Those deltas telescope, so the
//   cumulative bill across all generations equals the reference total.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/crawlers.h"
#include "core/frontier_log.h"
#include "gen/synthetic.h"
#include "server/local_server.h"
#include "util/macros.h"
#include "util/random.h"

namespace hdc {
namespace {

struct KillCase {
  std::string label;
  std::function<std::unique_ptr<Crawler>()> make_crawler;
  std::function<Dataset()> make_data;
};

std::vector<KillCase> MakeCases() {
  std::vector<KillCase> cases;
  cases.push_back({"rank_shrink", [] { return std::make_unique<RankShrink>(); },
                   [] {
                     SyntheticNumericOptions gen;
                     gen.d = 2;
                     gen.n = 500;
                     gen.value_range = 250;
                     gen.seed = 71;
                     return GenerateSyntheticNumeric(gen);
                   }});
  cases.push_back({"binary_shrink",
                   [] { return std::make_unique<BinaryShrink>(); },
                   [] {
                     SyntheticNumericOptions gen;
                     gen.d = 2;
                     gen.n = 250;
                     gen.value_range = 64;
                     gen.seed = 72;
                     return GenerateSyntheticNumeric(gen);
                   }});
  cases.push_back({"dfs", [] { return std::make_unique<DfsCrawler>(); },
                   [] {
                     SyntheticCategoricalOptions gen;
                     gen.domain_sizes = {5, 7, 6};
                     gen.n = 450;
                     gen.seed = 73;
                     return GenerateSyntheticCategorical(gen);
                   }});
  cases.push_back({"slice_cover",
                   [] { return std::make_unique<SliceCoverCrawler>(false); },
                   [] {
                     SyntheticCategoricalOptions gen;
                     gen.domain_sizes = {5, 7, 6};
                     gen.n = 450;
                     gen.seed = 74;
                     return GenerateSyntheticCategorical(gen);
                   }});
  cases.push_back({"lazy_slice_cover",
                   [] { return std::make_unique<SliceCoverCrawler>(true); },
                   [] {
                     SyntheticCategoricalOptions gen;
                     gen.domain_sizes = {5, 7, 6};
                     gen.n = 450;
                     gen.seed = 75;
                     return GenerateSyntheticCategorical(gen);
                   }});
  cases.push_back({"hybrid", [] { return std::make_unique<HybridCrawler>(); },
                   [] {
                     SyntheticMixedOptions gen;
                     gen.domain_sizes = {4, 5};
                     gen.num_numeric = 1;
                     gen.n = 450;
                     gen.value_range = 120;
                     gen.seed = 76;
                     return GenerateSyntheticMixed(gen);
                   }});
  return cases;
}

constexpr int kExitComplete = 0;
constexpr int kExitKilled = 3;
constexpr int kExitError = 9;

// One crawling process generation: replay (or start fresh), crawl, and
// hard-abort via _exit inside the on_commit hook once `kill_after_commits`
// durable commits have landed. Runs in the forked child; no gtest, no
// destructors, no buffered stdio on the result files.
void RunGeneration(const KillCase& test_case, const std::string& log_path,
                   const std::string& billed_path,
                   const std::string& result_path,
                   uint64_t kill_after_commits) {
  Dataset data = test_case.make_data();
  const uint64_t k = std::max<uint64_t>(8, data.MaxPointMultiplicity());
  auto shared = std::make_shared<Dataset>(data);
  LocalServer server(shared, k);

  std::shared_ptr<CrawlState> replayed;
  Status replay = ReplayFrontierLog(log_path, data.schema(), &replayed);
  if (!replay.ok() && replay.code() != Status::Code::kNotFound) {
    _exit(kExitError);
  }

  uint64_t commits_this_run = 0;
  FrontierLogOptions log_options;
  log_options.on_commit = [&](uint64_t) {
    if (++commits_this_run < kill_after_commits) return;
    // Crash point: the commit is durable, nothing after it is. Record how
    // much this process was billed, then die without unwinding.
    std::string bytes = std::to_string(server.queries_served()) + "\n";
    if (!WriteFileDurably(billed_path, bytes).ok()) _exit(kExitError);
    _exit(kExitKilled);
  };
  std::unique_ptr<FrontierLogWriter> log;
  if (!FrontierLogWriter::Open(log_path, log_options, &log).ok()) {
    _exit(kExitError);
  }

  auto crawler = test_case.make_crawler();
  CrawlOptions options;
  options.frontier_log = log.get();
  CrawlResult result = replayed == nullptr
                           ? crawler->Crawl(&server, options)
                           : crawler->Resume(&server, replayed, options);
  if (!result.status.ok()) _exit(kExitError);

  // Survived every kill point: report the finished crawl.
  std::ostringstream out;
  out << result.queries_issued << "\n" << result.extracted.size() << "\n";
  for (const Tuple& t : result.extracted.tuples()) {
    EncodeTupleTokens(t, &out);
    out << "\n";
  }
  std::string billed = std::to_string(server.queries_served()) + "\n";
  if (!WriteFileDurably(billed_path, billed).ok()) _exit(kExitError);
  if (!WriteFileDurably(result_path, out.str()).ok()) _exit(kExitError);
  _exit(kExitComplete);
}

uint64_t ReadCounterFile(const std::string& path) {
  std::ifstream in(path);
  uint64_t v = 0;
  in >> v;
  HDC_CHECK_MSG(static_cast<bool>(in), "missing counter file");
  return v;
}

class KillResumeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KillResumeTest, ResumesWithZeroRebilledQueries) {
  const KillCase test_case = MakeCases()[GetParam()];
  Dataset data = test_case.make_data();
  const uint64_t k = std::max<uint64_t>(8, data.MaxPointMultiplicity());
  auto shared = std::make_shared<Dataset>(data);

  // Uninterrupted ground truth.
  LocalServer ref_server(shared, k);
  auto ref_crawler = test_case.make_crawler();
  CrawlResult reference = ref_crawler->Crawl(&ref_server);
  ASSERT_TRUE(reference.status.ok());
  ASSERT_GT(reference.queries_issued, 20u) << "dataset too easy to crawl";

  const std::string base =
      ::testing::TempDir() + "/hdc_kill_" + test_case.label;
  const std::string log_path = base + ".log";
  const std::string billed_path = base + ".billed";
  const std::string result_path = base + ".result";
  std::remove(log_path.c_str());
  std::remove(billed_path.c_str());
  std::remove(result_path.c_str());

  Rng rng(900 + GetParam());
  uint64_t committed_queries = 0;  // Q_g: replayed progress before gen g
  uint64_t cumulative_billed = 0;
  int generations = 0;
  bool complete = false;
  while (!complete) {
    ASSERT_LT(generations, 500) << "crawl never completed";
    // Randomized kill point, in durable commits; occasionally far enough
    // out that the generation completes.
    const uint64_t kill_after = 1 + rng.UniformU64(8);

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      RunGeneration(test_case, log_path, billed_path, result_path,
                    kill_after);
      _exit(kExitError);  // unreachable
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << test_case.label;
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == kExitComplete || code == kExitKilled)
        << test_case.label << ": child exit code " << code;
    ++generations;

    const uint64_t billed = ReadCounterFile(billed_path);
    cumulative_billed += billed;

    std::shared_ptr<CrawlState> replayed;
    ASSERT_TRUE(
        ReplayFrontierLog(log_path, data.schema(), &replayed).ok());
    // Zero re-billing, both directions: the server billed exactly the
    // queries the log durably committed this generation.
    EXPECT_EQ(billed, replayed->queries_issued - committed_queries)
        << test_case.label << " generation " << generations;
    committed_queries = replayed->queries_issued;

    complete = (code == kExitComplete);
  }
  ASSERT_GT(generations, 1) << "no generation was actually killed";

  // The surviving generation's report: byte-identical totals and
  // extraction versus the uninterrupted reference.
  std::ifstream result(result_path);
  ASSERT_TRUE(result.good());
  uint64_t total_queries = 0, tuple_count = 0;
  result >> total_queries >> tuple_count;
  result.ignore();  // trailing newline
  EXPECT_EQ(total_queries, reference.queries_issued) << test_case.label;
  EXPECT_EQ(cumulative_billed, reference.queries_issued) << test_case.label;

  Dataset extracted(data.schema());
  const size_t arity = data.schema()->num_attributes();
  for (uint64_t i = 0; i < tuple_count; ++i) {
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(result, line)));
    std::istringstream tokens(line);
    Tuple t;
    ASSERT_TRUE(DecodeTupleTokens(&tokens, arity, &t).ok()) << line;
    extracted.Add(t);
  }
  EXPECT_TRUE(Dataset::MultisetEquals(extracted, data)) << test_case.label;
  EXPECT_TRUE(Dataset::MultisetEquals(extracted, reference.extracted))
      << test_case.label;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, KillResumeTest,
                         ::testing::Range<size_t>(0, 6),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return MakeCases()[info.param].label;
                         });

}  // namespace
}  // namespace hdc
