// Copyright (c) hdc authors. Apache-2.0 license.
//
// Durable checkpointing: an interrupted crawl serialized to text and
// restored in a fresh state must finish with the exact multiset and the
// same total query count as an uninterrupted crawl — across every
// algorithm.
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/decorators.h"
#include "server/local_server.h"

namespace hdc {
namespace {

struct CheckpointCase {
  std::string label;
  std::function<std::unique_ptr<Crawler>()> make_crawler;
  std::function<Dataset()> make_data;
};

std::vector<CheckpointCase> MakeCases() {
  std::vector<CheckpointCase> cases;
  cases.push_back({"rank_shrink",
                   [] { return std::make_unique<RankShrink>(); },
                   [] {
                     SyntheticNumericOptions gen;
                     gen.d = 2;
                     gen.n = 700;
                     gen.value_range = 350;
                     gen.seed = 31;
                     return GenerateSyntheticNumeric(gen);
                   }});
  cases.push_back({"binary_shrink",
                   [] { return std::make_unique<BinaryShrink>(); },
                   [] {
                     SyntheticNumericOptions gen;
                     gen.d = 2;
                     gen.n = 300;
                     gen.value_range = 64;
                     gen.seed = 32;
                     return GenerateSyntheticNumeric(gen);
                   }});
  cases.push_back({"dfs", [] { return std::make_unique<DfsCrawler>(); },
                   [] {
                     SyntheticCategoricalOptions gen;
                     gen.domain_sizes = {5, 7, 6};
                     gen.n = 600;
                     gen.seed = 33;
                     return GenerateSyntheticCategorical(gen);
                   }});
  cases.push_back({"slice_cover",
                   [] { return std::make_unique<SliceCoverCrawler>(false); },
                   [] {
                     SyntheticCategoricalOptions gen;
                     gen.domain_sizes = {5, 7, 6};
                     gen.n = 600;
                     gen.seed = 34;
                     return GenerateSyntheticCategorical(gen);
                   }});
  cases.push_back({"lazy_slice_cover",
                   [] { return std::make_unique<SliceCoverCrawler>(true); },
                   [] {
                     SyntheticCategoricalOptions gen;
                     gen.domain_sizes = {5, 7, 6};
                     gen.n = 600;
                     gen.seed = 35;
                     return GenerateSyntheticCategorical(gen);
                   }});
  cases.push_back({"hybrid", [] { return std::make_unique<HybridCrawler>(); },
                   [] {
                     SyntheticMixedOptions gen;
                     gen.domain_sizes = {4, 5};
                     gen.num_numeric = 1;
                     gen.n = 600;
                     gen.value_range = 120;
                     gen.seed = 36;
                     return GenerateSyntheticMixed(gen);
                   }});
  return cases;
}

class CheckpointTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CheckpointTest, SaveLoadResumeMatchesUninterrupted) {
  CheckpointCase test_case = MakeCases()[GetParam()];
  Dataset data = test_case.make_data();
  const uint64_t k = std::max<uint64_t>(8, data.MaxPointMultiplicity());
  auto shared = std::make_shared<Dataset>(data);

  // Reference run.
  LocalServer ref_server(shared, k);
  auto ref_crawler = test_case.make_crawler();
  CrawlResult reference = ref_crawler->Crawl(&ref_server);
  ASSERT_TRUE(reference.status.ok());
  ASSERT_GT(reference.queries_issued, 12u);

  // Interrupt mid-crawl, checkpoint through text, restore, resume —
  // repeatedly, every 9 queries.
  LocalServer server(shared, k);
  auto crawler = test_case.make_crawler();
  CrawlOptions budget;
  budget.max_queries = 9;
  CrawlResult result = crawler->Crawl(&server, budget);
  int cycles = 0;
  while (result.status.IsResourceExhausted() && cycles < 10000) {
    ++cycles;
    std::stringstream stream;
    ASSERT_TRUE(SaveCheckpoint(*result.resume_state, *data.schema(), &stream)
                    .ok());
    std::shared_ptr<CrawlState> restored;
    ASSERT_TRUE(
        LoadCheckpoint(&stream, data.schema(), &restored).ok());

    // Fresh crawler object each cycle, as a new process would have.
    auto next = test_case.make_crawler();
    result = next->Resume(&server, restored, budget);
  }
  ASSERT_TRUE(result.status.ok())
      << test_case.label << ": " << result.status.ToString();
  EXPECT_GT(cycles, 0);
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, data))
      << test_case.label;
  EXPECT_EQ(result.queries_issued, reference.queries_issued)
      << test_case.label;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CheckpointTest,
                         ::testing::Range<size_t>(0, 6),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return MakeCases()[info.param].label;
                         });

TEST(CheckpointTest, FileRoundTrip) {
  SyntheticNumericOptions gen;
  gen.d = 1;
  gen.n = 400;
  gen.value_range = 200;
  gen.seed = 41;
  auto data = std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));
  LocalServer server(data, 8);
  RankShrink crawler;
  CrawlOptions budget;
  budget.max_queries = 6;
  CrawlResult partial = crawler.Crawl(&server, budget);
  ASSERT_TRUE(partial.status.IsResourceExhausted());

  const std::string path = ::testing::TempDir() + "/hdc_ckpt.txt";
  ASSERT_TRUE(
      SaveCheckpointFile(*partial.resume_state, *data->schema(), path).ok());
  std::shared_ptr<CrawlState> restored;
  ASSERT_TRUE(LoadCheckpointFile(path, data->schema(), &restored).ok());
  CrawlResult done = crawler.Resume(&server, restored);
  ASSERT_TRUE(done.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(done.extracted, *data));
}

TEST(CheckpointTest, RejectsWrongSchema) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 200;
  gen.value_range = 100;
  gen.seed = 42;
  auto data = std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));
  LocalServer server(data, 8);
  RankShrink crawler;
  CrawlOptions budget;
  budget.max_queries = 3;
  CrawlResult partial = crawler.Crawl(&server, budget);
  ASSERT_TRUE(partial.status.IsResourceExhausted());

  std::stringstream stream;
  ASSERT_TRUE(SaveCheckpoint(*partial.resume_state, *data->schema(), &stream)
                  .ok());
  std::shared_ptr<CrawlState> restored;
  Status s = LoadCheckpoint(&stream, Schema::Numeric(3), &restored);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

// A checkpoint written in a *narrowed* numeric view (session
// schema_override) must load when the caller holds only the full-bounds
// schema: compatible schemas are accepted and the state comes back bound
// to the recorded, narrowed one.
TEST(CheckpointTest, AcceptsCompatibleNarrowedSchema) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 400;
  gen.value_range = 200;
  gen.seed = 45;
  auto data = std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));

  // The crawl runs in a half-width view of attribute 0.
  std::vector<AttributeSpec> attrs;
  for (size_t i = 0; i < data->schema()->num_attributes(); ++i) {
    attrs.push_back(data->schema()->attribute(i));
  }
  attrs[0].hi = (attrs[0].lo + attrs[0].hi) / 2;
  SchemaPtr narrowed = Schema::Make(std::move(attrs));

  LocalServer server(data, 8);
  SchemaOverrideServer view(&server, narrowed);
  BinaryShrink crawler;
  CrawlOptions budget;
  budget.max_queries = 15;
  CrawlResult partial = crawler.Crawl(&view, budget);
  ASSERT_TRUE(partial.status.IsResourceExhausted());

  std::stringstream stream;
  ASSERT_TRUE(SaveCheckpoint(*partial.resume_state, *narrowed, &stream).ok());

  // Load with the full schema: accepted, and the state is bound to the
  // narrowed space it was recorded in.
  std::shared_ptr<CrawlState> restored;
  Status s = LoadCheckpoint(&stream, data->schema(), &restored);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(*restored->extracted.schema() == *narrowed);
  EXPECT_FALSE(*restored->extracted.schema() == *data->schema());

  // The restored crawl finishes against the same narrowed view with the
  // uninterrupted run's total bill.
  CrawlResult uninterrupted = crawler.Crawl(&view);
  ASSERT_TRUE(uninterrupted.status.ok());
  CrawlResult done = crawler.Resume(&view, restored);
  ASSERT_TRUE(done.status.ok()) << done.status.ToString();
  EXPECT_EQ(done.queries_issued, uninterrupted.queries_issued);
  EXPECT_TRUE(
      Dataset::MultisetEquals(done.extracted, uninterrupted.extracted));
}

TEST(CheckpointTest, RejectsGarbage) {
  std::stringstream stream("not a checkpoint at all\n");
  std::shared_ptr<CrawlState> restored;
  EXPECT_FALSE(LoadCheckpoint(&stream, Schema::Numeric(1), &restored).ok());
}

TEST(CheckpointTest, RejectsTruncatedFrontier) {
  SyntheticNumericOptions gen;
  gen.d = 1;
  gen.n = 300;
  gen.value_range = 150;
  gen.seed = 43;
  auto data = std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));
  LocalServer server(data, 8);
  RankShrink crawler;
  CrawlOptions budget;
  budget.max_queries = 4;
  CrawlResult partial = crawler.Crawl(&server, budget);
  ASSERT_TRUE(partial.status.IsResourceExhausted());

  std::stringstream stream;
  ASSERT_TRUE(SaveCheckpoint(*partial.resume_state, *data->schema(), &stream)
                  .ok());
  std::string text = stream.str();
  text = text.substr(0, text.rfind("frontier-end"));
  std::stringstream truncated(text);
  std::shared_ptr<CrawlState> restored;
  EXPECT_FALSE(
      LoadCheckpoint(&truncated, data->schema(), &restored).ok());
}

TEST(CheckpointTest, RefusesToCheckpointFailedCrawl) {
  SchemaPtr schema = Schema::Numeric(1);
  auto data = std::make_shared<Dataset>(schema);
  for (int i = 0; i < 5; ++i) data->Add(Tuple({7}));
  LocalServer server(data, 4);
  RankShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.IsUnsolvable());
  // An unsolvable crawl produces no resume state at all.
  EXPECT_EQ(result.resume_state, nullptr);
}

TEST(CheckpointTest, SliceStateRoundTripPreservesTable) {
  // Interrupt a lazy crawl late enough that the slice table holds both
  // resolved (with bags) and overflowing entries; the restored state must
  // not re-issue any cached slice.
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {6, 8};
  gen.n = 500;
  gen.seed = 44;
  Dataset data = GenerateSyntheticCategorical(gen);
  const uint64_t k = std::max<uint64_t>(8, data.MaxPointMultiplicity());
  auto shared = std::make_shared<Dataset>(data);

  LocalServer ref_server(shared, k);
  SliceCoverCrawler ref(true);
  CrawlResult reference = ref.Crawl(&ref_server);
  ASSERT_TRUE(reference.status.ok());

  LocalServer server(shared, k);
  SliceCoverCrawler crawler(true);
  CrawlOptions budget;
  budget.max_queries = reference.queries_issued / 2;
  CrawlResult partial = crawler.Crawl(&server, budget);
  ASSERT_TRUE(partial.status.IsResourceExhausted());

  std::stringstream stream;
  ASSERT_TRUE(SaveCheckpoint(*partial.resume_state, *data.schema(), &stream)
                  .ok());
  std::shared_ptr<CrawlState> restored;
  ASSERT_TRUE(LoadCheckpoint(&stream, data.schema(), &restored).ok());

  SliceCoverCrawler fresh(true);
  CrawlResult done = fresh.Resume(&server, restored);
  ASSERT_TRUE(done.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(done.extracted, data));
  EXPECT_EQ(done.queries_issued, reference.queries_issued);
}

}  // namespace
}  // namespace hdc
