// Copyright (c) hdc authors. Apache-2.0 license.
//
// PolitenessPolicy pacing, asserted as *exact* schedules on a FakeClock:
// no real sleeping, no "roughly 100ms" tolerances.
#include <gtest/gtest.h>

#include <chrono>

#include "server/politeness.h"
#include "util/clock.h"
#include "util/random.h"

namespace hdc {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

PolitenessOptions Options(FakeClock* clock, milliseconds delay,
                          milliseconds jitter = milliseconds(0),
                          uint64_t seed = 7) {
  PolitenessOptions options;
  options.min_round_delay = delay;
  options.max_jitter = jitter;
  options.jitter_seed = seed;
  options.clock = clock;
  return options;
}

TEST(PolitenessPolicyTest, FirstRoundIsNeverDelayed) {
  FakeClock clock;
  PolitenessPolicy policy(Options(&clock, milliseconds(100)));
  EXPECT_EQ(policy.AwaitRoundStart(), nanoseconds(0));
  EXPECT_EQ(clock.sleep_count(), 0u);
  EXPECT_EQ(policy.rounds(), 1u);
}

TEST(PolitenessPolicyTest, EnforcesExactMinimumGapBackToBack) {
  FakeClock clock;
  PolitenessPolicy policy(Options(&clock, milliseconds(100)));

  policy.AwaitRoundStart();  // t = 0
  // Rounds fired back-to-back: each must wait the full 100ms.
  EXPECT_EQ(policy.AwaitRoundStart(), nanoseconds(milliseconds(100)));
  EXPECT_EQ(clock.Now(), nanoseconds(milliseconds(100)));
  EXPECT_EQ(policy.AwaitRoundStart(), nanoseconds(milliseconds(100)));
  EXPECT_EQ(clock.Now(), nanoseconds(milliseconds(200)));

  const auto sleeps = clock.sleeps();
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], nanoseconds(milliseconds(100)));
  EXPECT_EQ(sleeps[1], nanoseconds(milliseconds(100)));
  EXPECT_EQ(policy.total_waited(), nanoseconds(milliseconds(200)));
}

TEST(PolitenessPolicyTest, SlowWorkAbsorbsTheDelay) {
  FakeClock clock;
  PolitenessPolicy policy(Options(&clock, milliseconds(100)));

  policy.AwaitRoundStart();          // t = 0
  clock.Advance(milliseconds(150));  // the round itself took 150ms
  // The gap is already satisfied: no sleep at all.
  EXPECT_EQ(policy.AwaitRoundStart(), nanoseconds(0));
  EXPECT_EQ(clock.Now(), nanoseconds(milliseconds(150)));

  clock.Advance(milliseconds(40));   // next round took only 40ms
  // 60ms of the 100ms gap remain.
  EXPECT_EQ(policy.AwaitRoundStart(), nanoseconds(milliseconds(60)));
  EXPECT_EQ(clock.Now(), nanoseconds(milliseconds(250)));
}

TEST(PolitenessPolicyTest, JitterFollowsTheSeededStream) {
  FakeClock clock;
  PolitenessPolicy policy(
      Options(&clock, milliseconds(100), milliseconds(50), /*seed=*/42));

  // The policy draws jitter from Rng(42) in round order; replay the same
  // stream to compute the exact expected schedule.
  Rng expected_stream(42);
  policy.AwaitRoundStart();  // round 1: free
  for (int round = 2; round <= 5; ++round) {
    const auto jitter = nanoseconds(static_cast<int64_t>(
        expected_stream.UniformU64(
            static_cast<uint64_t>(nanoseconds(milliseconds(50)).count()))));
    EXPECT_EQ(policy.AwaitRoundStart(),
              nanoseconds(milliseconds(100)) + jitter)
        << "round " << round;
  }
  EXPECT_EQ(policy.rounds(), 5u);
}

/// A clock whose sleeps overshoot by a fixed amount — the OS never wakes
/// a thread exactly on time.
class OversleepingClock : public FakeClock {
 public:
  explicit OversleepingClock(std::chrono::nanoseconds overshoot)
      : overshoot_(overshoot) {}
  void SleepFor(std::chrono::nanoseconds duration) override {
    FakeClock::SleepFor(duration + overshoot_);
  }

 private:
  std::chrono::nanoseconds overshoot_;
};

TEST(PolitenessPolicyTest, OversleepPushesTheNextRoundOutToo) {
  // Every sleep overshoots by 20ms. The minimum gap must be measured from
  // the round's *actual* start (the late wake), not the scheduled one —
  // otherwise round 3 would start only 80ms after round 2 really began.
  OversleepingClock clock(milliseconds(20));
  PolitenessPolicy policy(Options(&clock, milliseconds(100)));

  policy.AwaitRoundStart();  // t = 0
  EXPECT_EQ(policy.AwaitRoundStart(), nanoseconds(milliseconds(100)));
  // Round 2 actually started at t = 120 (overslept). Round 3 must wait
  // the full 100ms from there — not 80ms from the scheduled t = 100.
  EXPECT_EQ(policy.AwaitRoundStart(), nanoseconds(milliseconds(100)));
  EXPECT_EQ(clock.Now(), nanoseconds(milliseconds(240)));
}

TEST(PolitenessPolicyTest, ZeroConfigurationPacesNothing) {
  FakeClock clock;
  PolitenessPolicy policy(Options(&clock, milliseconds(0)));
  EXPECT_FALSE(policy.enforces_delay());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.AwaitRoundStart(), nanoseconds(0));
  }
  EXPECT_EQ(clock.sleep_count(), 0u) << "a no-op policy never touches the "
                                        "clock's sleep path";
  EXPECT_EQ(policy.total_waited(), nanoseconds(0));
}

TEST(PolitenessPolicyTest, DefaultClockIsTheRealClock) {
  // Just the construction contract: a default policy (no clock injected)
  // must bind to the process RealClock and pace nothing by default.
  PolitenessPolicy policy;
  EXPECT_FALSE(policy.enforces_delay());
  EXPECT_EQ(policy.AwaitRoundStart(), nanoseconds(0));
}

}  // namespace
}  // namespace hdc
