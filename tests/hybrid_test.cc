// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/hybrid.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/rank_shrink.h"
#include "core/slice_cover.h"
#include "gen/synthetic.h"
#include "server/local_server.h"
#include "test_util.h"

namespace hdc {
namespace {

using testing_util::ExpectExactExtraction;

TEST(HybridTest, AcceptsEverySchemaKind) {
  HybridCrawler crawler;
  EXPECT_TRUE(crawler.ValidateSchema(*Schema::Numeric(2)).ok());
  EXPECT_TRUE(crawler.ValidateSchema(*Schema::Categorical({3})).ok());
  EXPECT_TRUE(crawler
                  .ValidateSchema(*Schema::Make(
                      {AttributeSpec::Categorical("C", 2),
                       AttributeSpec::Numeric("N")}))
                  .ok());
}

TEST(HybridTest, MixedSpaceExactExtraction) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {4, 6};
  gen.num_numeric = 2;
  gen.n = 1500;
  gen.value_range = 200;
  gen.zipf_s = 0.9;
  gen.seed = 12;
  Dataset data = GenerateSyntheticMixed(gen);
  const uint64_t k = 16;
  ASSERT_LE(data.MaxPointMultiplicity(), k);
  HybridCrawler crawler;
  ExpectExactExtraction(&crawler, data, k);
}

TEST(HybridTest, DegeneratesToRankShrinkOnNumericSpace) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 600;
  gen.value_range = 300;
  gen.seed = 8;
  Dataset data = GenerateSyntheticNumeric(gen);
  const uint64_t k = 8;
  ASSERT_LE(data.MaxPointMultiplicity(), k);

  HybridCrawler hybrid;
  RankShrink rank_shrink;
  CrawlResult hybrid_result = ExpectExactExtraction(&hybrid, data, k);
  CrawlResult rank_result = ExpectExactExtraction(&rank_shrink, data, k);
  // With no categorical attributes the hybrid *is* rank-shrink: identical
  // query counts, not merely similar.
  EXPECT_EQ(hybrid_result.queries_issued, rank_result.queries_issued);
}

TEST(HybridTest, DegeneratesToLazySliceCoverOnCategoricalSpace) {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {5, 6, 4};
  gen.n = 800;
  gen.zipf_s = 1.0;
  gen.seed = 15;
  Dataset data = GenerateSyntheticCategorical(gen);
  const uint64_t k = 128;
  ASSERT_LE(data.MaxPointMultiplicity(), k);

  HybridCrawler hybrid;  // lazy by default
  SliceCoverCrawler lazy(/*lazy=*/true);
  CrawlResult hybrid_result = ExpectExactExtraction(&hybrid, data, k);
  CrawlResult lazy_result = ExpectExactExtraction(&lazy, data, k);
  EXPECT_EQ(hybrid_result.queries_issued, lazy_result.queries_issued);
}

TEST(HybridTest, SingleCategoricalAttributeCost) {
  // Lemma 9 (cat = 1): cost U1 + O(d*n/k). With every tuple under one
  // categorical value, the crawl pays U1 slice queries plus one rank-shrink
  // instance.
  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("C", 10),
      AttributeSpec::NumericBounded("N", 0, 10000),
  });
  auto data = std::make_shared<Dataset>(schema);
  Rng rng(4);
  const size_t n = 2000;
  for (size_t i = 0; i < n; ++i) {
    data->Add(Tuple({1, rng.UniformInt(0, 10000)}));
  }
  const uint64_t k = 64;
  ASSERT_LE(data->MaxPointMultiplicity(), k);

  LocalServer server(data, k);
  HybridCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
  // U1 = 10 slices + one numeric crawl bounded by 20 * 1 * n/k + slack.
  const double bound = 10.0 + 20.0 * (static_cast<double>(n) / k) + 16.0;
  EXPECT_LE(static_cast<double>(result.queries_issued), bound);
}

TEST(HybridTest, EagerModeAlsoExact) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {3, 5};
  gen.num_numeric = 1;
  gen.n = 900;
  gen.value_range = 150;
  gen.seed = 44;
  Dataset data = GenerateSyntheticMixed(gen);
  const uint64_t k = 8;
  ASSERT_LE(data.MaxPointMultiplicity(), k);

  HybridOptions options;
  options.lazy = false;
  HybridCrawler eager(options);
  CrawlResult eager_result = ExpectExactExtraction(&eager, data, k);

  HybridCrawler lazy;
  CrawlResult lazy_result = ExpectExactExtraction(&lazy, data, k);
  EXPECT_LE(lazy_result.queries_issued, eager_result.queries_issued);
}

TEST(HybridTest, HeavyDuplicatePointJustAtK) {
  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("C", 3),
      AttributeSpec::NumericBounded("N", 0, 100),
  });
  auto data = std::make_shared<Dataset>(schema);
  for (int i = 0; i < 16; ++i) data->Add(Tuple({2, 50}));  // multiplicity k
  for (Value v = 0; v < 40; ++v) data->Add(Tuple({1 + v % 3, v}));
  const uint64_t k = 16;
  ASSERT_LE(data->MaxPointMultiplicity(), k);
  HybridCrawler crawler;
  ExpectExactExtraction(&crawler, *data, k);
}

TEST(HybridTest, DetectsUnsolvableInstance) {
  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("C", 3),
      AttributeSpec::NumericBounded("N", 0, 100),
  });
  auto data = std::make_shared<Dataset>(schema);
  for (int i = 0; i < 9; ++i) data->Add(Tuple({2, 50}));
  LocalServer server(data, /*k=*/8);
  HybridCrawler crawler;
  CrawlResult result = crawler.Crawl(&server);
  EXPECT_TRUE(result.status.IsUnsolvable());
}

TEST(HybridTest, InterleavedAttributeKinds) {
  // The schema need not put categorical attributes first: the data-space
  // tree uses categorical attributes in schema order wherever they sit.
  SchemaPtr schema = Schema::Make({
      AttributeSpec::NumericBounded("N1", 0, 50),
      AttributeSpec::Categorical("C1", 4),
      AttributeSpec::NumericBounded("N2", 0, 50),
      AttributeSpec::Categorical("C2", 3),
  });
  auto data = std::make_shared<Dataset>(schema);
  Rng rng(9);
  for (int i = 0; i < 700; ++i) {
    data->Add(Tuple({rng.UniformInt(0, 50), rng.UniformInt(1, 4),
                     rng.UniformInt(0, 50), rng.UniformInt(1, 3)}));
  }
  const uint64_t k = 8;
  ASSERT_LE(data->MaxPointMultiplicity(), k);
  HybridCrawler crawler;
  ExpectExactExtraction(&crawler, *data, k);
}

}  // namespace
}  // namespace hdc
