// Copyright (c) hdc authors. Apache-2.0 license.
//
// The sharded scatter-gather backend (server/sharding.h) against the
// single-index reference:
//
//  - the partitioner's invariants (disjoint cover, preserved global order,
//    shared global ranking);
//  - response-level byte equality: every query answers identically through
//    N shards and through one LocalServer, overflow flag, tuple order and
//    hidden ids included;
//  - full-crawl equality: all six crawlers extract the same bag with the
//    same query count over N = 1, 2, 4 shards as over the unsharded stack;
//  - merged-overflow edge cases at the k boundary: ties across shards,
//    empty shards, one shard at its own cap, |q(D)| = k vs k + 1;
//  - partial failure: one shard dying mid-round leaves a valid merged
//    answered prefix and a typed status, and the suffix completes after
//    recovery.
#include "server/sharding.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/decorators.h"
#include "server/local_server.h"

namespace hdc {
namespace {

/// Answers must match byte for byte: flag, order, ids, values.
void ExpectSameResponse(const Response& got, const Response& want,
                        const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(got.overflow, want.overflow);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.tuples[i].hidden_id, want.tuples[i].hidden_id);
    EXPECT_EQ(got.tuples[i].tuple, want.tuples[i].tuple);
  }
}

std::shared_ptr<const Dataset> MixedData(uint64_t seed, size_t n = 400) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {4, 6};
  gen.num_numeric = 1;
  gen.n = n;
  gen.value_range = 100;
  gen.seed = seed;
  return std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));
}

// --- partitioner invariants -------------------------------------------------

TEST(ShardPlanTest, ShardsAreADisjointOrderPreservingCover) {
  auto data = MixedData(91);
  for (ShardSplit split : {ShardSplit::kHash, ShardSplit::kRange}) {
    ShardPlanOptions options;
    options.num_shards = 4;
    options.split = split;
    ShardPlan plan = ShardPlan::Partition(data, /*k=*/8, nullptr, options);
    ASSERT_EQ(plan.num_shards(), 4u);

    std::vector<bool> covered(data->size(), false);
    size_t total = 0;
    for (size_t s = 0; s < plan.num_shards(); ++s) {
      const auto& gids = plan.shard_global_ids(s);
      const auto& shard_data = *plan.shard_dataset(s);
      ASSERT_EQ(gids.size(), shard_data.size());
      total += gids.size();
      for (size_t i = 0; i < gids.size(); ++i) {
        // Disjoint: no global id dealt twice.
        ASSERT_LT(gids[i], data->size());
        EXPECT_FALSE(covered[gids[i]]) << "row dealt to two shards";
        covered[gids[i]] = true;
        // Order-preserving: local id order is global id order.
        if (i > 0) EXPECT_LT(gids[i - 1], gids[i]);
        // The shard row is the global row.
        EXPECT_EQ(shard_data.tuple(i), data->tuple(gids[i]));
        // The shard's priority slice is the global table's.
        EXPECT_EQ(plan.shard_priorities(s)[i],
                  plan.global_priorities()[gids[i]]);
      }
    }
    EXPECT_EQ(total, data->size()) << "cover: every row in some shard";
  }
}

TEST(ShardPlanTest, HashSplitIsReasonablyBalanced) {
  auto data = MixedData(92, /*n=*/1000);
  ShardPlanOptions options;
  options.num_shards = 4;
  ShardPlan plan = ShardPlan::Partition(data, 8, nullptr, options);
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    const size_t size = plan.shard_dataset(s)->size();
    EXPECT_GT(size, 150u);
    EXPECT_LT(size, 350u);
  }
}

// --- response-level equality ------------------------------------------------

TEST(ShardedServerTest, EveryProbeMatchesSingleIndexByteForByte) {
  auto data = MixedData(93);
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  LocalServer reference(data, k);

  // A probe mix crossing resolved and overflowing territory: full space,
  // single slices, pairs, and point-ish queries.
  std::vector<Query> probes;
  probes.push_back(Query::FullSpace(data->schema()));
  for (Value a = 1; a <= 4; ++a) {
    probes.push_back(
        Query::FullSpace(data->schema()).WithCategoricalEquals(0, a));
    for (Value b = 1; b <= 6; ++b) {
      probes.push_back(Query::FullSpace(data->schema())
                           .WithCategoricalEquals(0, a)
                           .WithCategoricalEquals(1, b));
    }
  }

  for (ShardSplit split : {ShardSplit::kHash, ShardSplit::kRange}) {
    for (unsigned num_shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(num_shards) +
                   (split == ShardSplit::kHash ? " hash" : " range"));
      ShardPlanOptions options;
      options.num_shards = num_shards;
      options.split = split;
      ShardPlan plan = ShardPlan::Partition(data, k, nullptr, options);
      auto sharded = ShardedServer::OverPlan(plan);
      ASSERT_EQ(sharded->k(), k);

      for (size_t i = 0; i < probes.size(); ++i) {
        Response want, got;
        ASSERT_TRUE(reference.Issue(probes[i], &want).ok());
        ASSERT_TRUE(sharded->Issue(probes[i], &got).ok());
        ExpectSameResponse(got, want, "probe " + std::to_string(i));
      }
      EXPECT_EQ(sharded->queries_answered(), probes.size());
    }
  }
}

// --- full crawls: all six crawlers, N = 1 / 2 / 4 ---------------------------

struct CrawlCase {
  std::string label;
  std::function<std::unique_ptr<Crawler>()> make_crawler;
  std::function<Dataset()> make_data;
};

std::vector<CrawlCase> MakeCrawlCases() {
  std::vector<CrawlCase> cases;
  cases.push_back(
      {"rank_shrink", [] { return std::make_unique<RankShrink>(); },
       [] {
         SyntheticNumericOptions gen;
         gen.d = 2;
         gen.n = 400;
         gen.value_range = 250;
         gen.seed = 61;
         return GenerateSyntheticNumeric(gen);
       }});
  cases.push_back(
      {"binary_shrink", [] { return std::make_unique<BinaryShrink>(); },
       [] {
         SyntheticNumericOptions gen;
         gen.d = 2;
         gen.n = 250;
         gen.value_range = 128;
         gen.seed = 62;
         return GenerateSyntheticNumeric(gen);
       }});
  cases.push_back(
      {"dfs", [] { return std::make_unique<DfsCrawler>(); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 5, 4};
         gen.n = 400;
         gen.seed = 63;
         return GenerateSyntheticCategorical(gen);
       }});
  cases.push_back(
      {"slice_cover",
       [] { return std::make_unique<SliceCoverCrawler>(false); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 5, 4};
         gen.n = 400;
         gen.seed = 64;
         return GenerateSyntheticCategorical(gen);
       }});
  cases.push_back(
      {"lazy_slice_cover",
       [] { return std::make_unique<SliceCoverCrawler>(true); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 5, 4};
         gen.n = 400;
         gen.seed = 65;
         return GenerateSyntheticCategorical(gen);
       }});
  cases.push_back(
      {"hybrid", [] { return std::make_unique<HybridCrawler>(); },
       [] {
         SyntheticMixedOptions gen;
         gen.domain_sizes = {4, 5};
         gen.num_numeric = 1;
         gen.n = 400;
         gen.value_range = 100;
         gen.seed = 66;
         return GenerateSyntheticMixed(gen);
       }});
  return cases;
}

TEST(ShardedEquivalenceTest, AllSixCrawlersMatchSingleIndexAtEveryWidth) {
  for (const CrawlCase& test_case : MakeCrawlCases()) {
    SCOPED_TRACE(test_case.label);
    auto data = std::make_shared<const Dataset>(test_case.make_data());
    const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());

    LocalServer local(data, k);
    auto truth_crawler = test_case.make_crawler();
    CrawlResult truth = truth_crawler->Crawl(&local);
    ASSERT_TRUE(truth.status.ok()) << truth.status.ToString();
    ASSERT_TRUE(Dataset::MultisetEquals(truth.extracted, *data));

    for (unsigned num_shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(num_shards));
      ShardPlanOptions options;
      options.num_shards = num_shards;
      ShardPlan plan = ShardPlan::Partition(data, k, nullptr, options);
      auto sharded = ShardedServer::OverPlan(plan);

      auto crawler = test_case.make_crawler();
      CrawlResult result = crawler->Crawl(sharded.get());
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, truth.extracted))
          << "sharded extraction differs from single-index";
      EXPECT_EQ(result.queries_issued, truth.queries_issued)
          << "sharding must not change the paper's cost metric";
      EXPECT_EQ(result.rows_seen, truth.rows_seen);
      EXPECT_EQ(sharded->queries_answered(), truth.queries_issued);
    }
  }
}

// --- merged-overflow edges at the k boundary --------------------------------

/// A dataset of `n` one-attribute rows, all matching the full-space query,
/// with explicit priorities — the microscope for merge-cut decisions.
struct Rig {
  std::shared_ptr<const Dataset> data;
  ShardPlan plan;
  std::unique_ptr<ShardedServer> sharded;
  std::unique_ptr<LocalServer> reference;

  Rig(size_t n, uint64_t k, std::vector<uint64_t> priorities,
      unsigned num_shards, ShardSplit split = ShardSplit::kRange) {
    SchemaPtr schema = Schema::Categorical({2});
    auto building = std::make_shared<Dataset>(schema);
    for (size_t i = 0; i < n; ++i) building->Add(Tuple({1}));
    data = building;
    ShardPlanOptions options;
    options.num_shards = num_shards;
    options.split = split;
    plan = ShardPlan::Partition(data, k, MakeFixedPriorityPolicy(priorities),
                                options);
    sharded = ShardedServer::OverPlan(plan);
    reference = std::make_unique<LocalServer>(
        data, k, MakeFixedPriorityPolicy(std::move(priorities)));
  }

  void ExpectMatchesReference(const std::string& what) {
    Query q = Query::FullSpace(data->schema());
    Response want, got;
    ASSERT_TRUE(reference->Issue(q, &want).ok());
    ASSERT_TRUE(sharded->Issue(q, &got).ok());
    ExpectSameResponse(got, want, what);
  }
};

TEST(ShardedOverflowTest, TiesAtTheKBoundaryBreakByGlobalIdAcrossShards) {
  // Nine rows, all the same priority, k = 4: the cut keeps the four
  // lowest global ids — which straddle both shards under a range split
  // and interleave under any split. Identical through one index.
  Rig rig(/*n=*/9, /*k=*/4, std::vector<uint64_t>(9, 7), /*num_shards=*/3);
  rig.ExpectMatchesReference("all-tied overflow at k");
  EXPECT_EQ(rig.sharded->merged_overflows(), 1u);
}

TEST(ShardedOverflowTest, ExactlyKAcrossShardsStaysResolved) {
  // |q(D)| == k spread over 4 shards: no shard overflows, the sum equals
  // k — the merged answer must be *resolved* with the whole bag in global
  // id order.
  Rig rig(/*n=*/6, /*k=*/6, {5, 3, 9, 1, 7, 2}, /*num_shards=*/4);
  Query q = Query::FullSpace(rig.data->schema());
  Response got;
  ASSERT_TRUE(rig.sharded->Issue(q, &got).ok());
  EXPECT_FALSE(got.overflow);
  EXPECT_EQ(got.size(), 6u);
  rig.ExpectMatchesReference("sum == k resolved");
  EXPECT_EQ(rig.sharded->merged_overflows(), 0u);
}

TEST(ShardedOverflowTest, KPlusOneAcrossShardsOverflowsWithoutShardOverflow) {
  // |q(D)| == k + 1 over 4 shards of at most 2 rows each, k = 6: every
  // shard resolves (2 <= 6), yet the merged answer must overflow and cut
  // to the top 6 by priority. The candidates-sum rule, not any shard
  // flag, makes this call.
  Rig rig(/*n=*/7, /*k=*/6, {10, 20, 30, 40, 50, 60, 70}, /*num_shards=*/4);
  Query q = Query::FullSpace(rig.data->schema());
  Response got;
  ASSERT_TRUE(rig.sharded->Issue(q, &got).ok());
  EXPECT_TRUE(got.overflow);
  EXPECT_EQ(got.size(), 6u);
  EXPECT_EQ(rig.sharded->merged_overflows(), 1u);
  rig.ExpectMatchesReference("sum == k+1 overflow");
  // No shard overflowed on its own.
  for (size_t s = 0; s < rig.sharded->num_shards(); ++s) {
    EXPECT_EQ(rig.sharded->shard_stats(s).overflows, 0u);
  }
}

TEST(ShardedOverflowTest, EmptyShardContributesNothingAndBreaksNothing) {
  // Three rows over four range shards: shard 3 is empty by construction.
  Rig rig(/*n=*/3, /*k=*/2, {3, 1, 2}, /*num_shards=*/4);
  EXPECT_EQ(rig.plan.shard_dataset(3)->size(), 0u);
  rig.ExpectMatchesReference("empty shard");
  EXPECT_EQ(rig.sharded->shard_stats(3).candidates_contributed, 0u);
}

TEST(ShardedOverflowTest, OneShardAtItsCapPlusEmptySiblingsStillOverflows) {
  // All k + 3 rows land in shard 0 (range split, tiny siblings): shard 0
  // itself overflows and returns exactly k rows; the other shards return
  // nothing. The merged row count equals k — only the shard's own
  // overflow flag can (and must) flip the merged answer to overflow.
  const uint64_t k = 4;
  std::vector<uint64_t> priorities{9, 8, 7, 6, 5, 4, 3};
  SchemaPtr schema = Schema::Categorical({2});
  auto building = std::make_shared<Dataset>(schema);
  for (size_t i = 0; i < priorities.size(); ++i) building->Add(Tuple({1}));
  auto data = std::static_pointer_cast<const Dataset>(building);

  // Hand-build the partition: everything in shard 0, shard 1 empty.
  ShardPlanOptions options;
  options.num_shards = 1;
  ShardPlan plan =
      ShardPlan::Partition(data, k, MakeFixedPriorityPolicy(priorities),
                           options);
  std::vector<ShardBackend> backends;
  ShardBackend full;
  full.server = std::make_unique<LocalServer>(plan.BuildShardIndex(0));
  full.global_ids = plan.shard_global_ids(0);
  backends.push_back(std::move(full));
  ShardBackend empty;
  auto empty_data = std::make_shared<const Dataset>(schema);
  empty.server = std::make_unique<LocalServer>(
      empty_data, k, MakeFixedPriorityPolicy({}));
  backends.push_back(std::move(empty));

  ShardedServer sharded(std::move(backends),
                        plan.shared_global_priorities());
  Query q = Query::FullSpace(schema);
  Response got;
  ASSERT_TRUE(sharded.Issue(q, &got).ok());
  EXPECT_TRUE(got.overflow) << "k merged rows but the shard proved > k";
  EXPECT_EQ(got.size(), k);

  LocalServer reference(data, k, MakeFixedPriorityPolicy(priorities));
  Response want;
  ASSERT_TRUE(reference.Issue(q, &want).ok());
  ExpectSameResponse(got, want, "capped shard + empty siblings");
}

// --- partial failure: one shard down mid-round ------------------------------

TEST(ShardedFaultTest, ShardFailingMidRoundLeavesValidMergedPrefix) {
  auto data = MixedData(94, /*n=*/300);
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  ShardPlanOptions options;
  options.num_shards = 2;
  ShardPlan plan = ShardPlan::Partition(data, k, nullptr, options);

  // Shard 1 runs behind a 3-query budget: it answers three members of the
  // scattered round, then fails with ResourceExhausted.
  std::vector<ShardBackend> backends;
  for (size_t s = 0; s < 2; ++s) {
    ShardBackend backend;
    auto local = std::make_unique<LocalServer>(plan.BuildShardIndex(s));
    if (s == 1) {
      backend.server =
          std::make_unique<BudgetServer>(std::move(local), /*budget=*/3);
    } else {
      backend.server = std::move(local);
    }
    backend.global_ids = plan.shard_global_ids(s);
    backends.push_back(std::move(backend));
  }
  ShardedServer sharded(std::move(backends),
                        plan.shared_global_priorities());

  std::vector<Query> batch;
  for (Value a = 1; a <= 4; ++a) {
    batch.push_back(
        Query::FullSpace(data->schema()).WithCategoricalEquals(0, a));
  }
  std::vector<Response> responses;
  Status s = sharded.IssueBatch(batch, &responses);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  ASSERT_EQ(responses.size(), 3u)
      << "merged prefix = the failing shard's answered prefix";
  EXPECT_EQ(sharded.shard_stats(1).failures, 1u);
  EXPECT_EQ(sharded.shard_stats(0).failures, 0u);

  // The merged prefix holds real answers.
  LocalServer reference(data, k);
  for (size_t i = 0; i < responses.size(); ++i) {
    Response want;
    ASSERT_TRUE(reference.Issue(batch[i], &want).ok());
    ExpectSameResponse(responses[i], want,
                       "prefix member " + std::to_string(i));
  }

  // Recovery: refill the failed shard's budget, resubmit the suffix —
  // deterministic answers mean re-asked shards cannot diverge.
  static_cast<BudgetServer*>(sharded.shard(1))->Refill(/*max_queries=*/100);
  const std::vector<Query> suffix(batch.begin() + 3, batch.end());
  std::vector<Response> rest;
  ASSERT_TRUE(sharded.IssueBatch(suffix, &rest).ok());
  ASSERT_EQ(rest.size(), 1u);
  Response want;
  ASSERT_TRUE(reference.Issue(batch[3], &want).ok());
  ExpectSameResponse(rest[0], want, "resubmitted suffix");
}

// --- load hint aggregation --------------------------------------------------

TEST(ShardedServerTest, LoadHintCarriesOneQueueWaitPerShard) {
  auto data = MixedData(95, /*n=*/100);
  ShardPlanOptions options;
  options.num_shards = 3;
  ShardPlan plan = ShardPlan::Partition(data, 8, nullptr, options);
  auto sharded = ShardedServer::OverPlan(plan);
  const ServerLoadHint hint = sharded->load_hint();
  EXPECT_EQ(hint.shard_queue_wait_seconds.size(), 3u);
  EXPECT_FALSE(hint.latency_feedback) << "all shards are in-process";
}

}  // namespace
}  // namespace hdc
