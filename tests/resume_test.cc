// Copyright (c) hdc authors. Apache-2.0 license.
//
// Budget interruption and resumption. Crawls are deterministic (static
// priorities, explicit work stacks), so an interrupted-and-resumed crawl
// must issue exactly the same total number of queries as an uninterrupted
// one and extract the same multiset.
#include <gtest/gtest.h>

#include <memory>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/decorators.h"
#include "server/local_server.h"
#include "test_util.h"

namespace hdc {
namespace {

using testing_util::CrawlWithResumes;

struct ResumeCase {
  std::string label;
  std::function<std::unique_ptr<Crawler>()> make_crawler;
  std::function<Dataset()> make_data;
  uint64_t k;
};

std::vector<ResumeCase> MakeCases() {
  std::vector<ResumeCase> cases;
  cases.push_back(
      {"rank_shrink", [] { return std::make_unique<RankShrink>(); },
       [] {
         SyntheticNumericOptions gen;
         gen.d = 2;
         gen.n = 800;
         gen.value_range = 400;
         gen.seed = 5;
         return GenerateSyntheticNumeric(gen);
       },
       8});
  cases.push_back(
      {"binary_shrink", [] { return std::make_unique<BinaryShrink>(); },
       [] {
         SyntheticNumericOptions gen;
         gen.d = 2;
         gen.n = 400;
         gen.value_range = 128;
         gen.seed = 6;
         return GenerateSyntheticNumeric(gen);
       },
       8});
  cases.push_back(
      {"dfs", [] { return std::make_unique<DfsCrawler>(); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 6, 4};
         gen.n = 600;
         gen.seed = 7;
         return GenerateSyntheticCategorical(gen);
       },
       8});
  cases.push_back(
      {"slice_cover",
       [] { return std::make_unique<SliceCoverCrawler>(false); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 6, 4};
         gen.n = 600;
         gen.seed = 8;
         return GenerateSyntheticCategorical(gen);
       },
       8});
  cases.push_back(
      {"lazy_slice_cover",
       [] { return std::make_unique<SliceCoverCrawler>(true); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 6, 4};
         gen.n = 600;
         gen.seed = 9;
         return GenerateSyntheticCategorical(gen);
       },
       8});
  cases.push_back(
      {"hybrid", [] { return std::make_unique<HybridCrawler>(); },
       [] {
         SyntheticMixedOptions gen;
         gen.domain_sizes = {4, 5};
         gen.num_numeric = 1;
         gen.n = 700;
         gen.value_range = 100;
         gen.seed = 10;
         return GenerateSyntheticMixed(gen);
       },
       8});
  return cases;
}

class ResumeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ResumeTest, InterruptedCrawlMatchesUninterrupted) {
  ResumeCase test_case = MakeCases()[GetParam()];
  Dataset data = test_case.make_data();
  const uint64_t k = std::max(test_case.k, data.MaxPointMultiplicity());

  // Reference: uninterrupted crawl.
  auto shared = std::make_shared<Dataset>(data);
  LocalServer ref_server(shared, k);
  auto ref_crawler = test_case.make_crawler();
  CrawlResult reference = ref_crawler->Crawl(&ref_server);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_GT(reference.queries_issued, 10u)
      << "test needs a crawl long enough to interrupt";

  // Interrupted every 7 queries.
  LocalServer server(shared, k);
  auto crawler = test_case.make_crawler();
  auto [result, runs] = CrawlWithResumes(crawler.get(), &server, 7);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(runs, 2);
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, data))
      << test_case.label;
  EXPECT_EQ(result.queries_issued, reference.queries_issued)
      << test_case.label
      << ": interruption must not waste or save queries";
}

TEST_P(ResumeTest, ExternalBudgetServerInterruption) {
  ResumeCase test_case = MakeCases()[GetParam()];
  Dataset data = test_case.make_data();
  const uint64_t k = std::max(test_case.k, data.MaxPointMultiplicity());

  auto shared = std::make_shared<Dataset>(data);
  LocalServer base(shared, k);
  BudgetServer budget(&base, 11);
  auto crawler = test_case.make_crawler();

  CrawlResult result = crawler->Crawl(&budget);
  int rounds = 1;
  while (result.status.IsResourceExhausted() && rounds < 10000) {
    ASSERT_NE(result.resume_state, nullptr);
    budget.Refill(11);  // the next day's quota
    result = crawler->Resume(&budget, result.resume_state);
    ++rounds;
  }
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(rounds, 1);
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, data))
      << test_case.label;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ResumeTest,
                         ::testing::Range<size_t>(0, 6),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return MakeCases()[info.param].label;
                         });

TEST_P(ResumeTest, MidBatchBudgetExhaustionLosesNoWork) {
  // Regression for the batched server contract: when BudgetServer truncates
  // a batch in the middle (some members answered, the rest refused), the
  // interrupted crawl must resume after Refill() with no lost and no
  // double-collected work items — the same extraction and the same total
  // query count as an uninterrupted run.
  ResumeCase test_case = MakeCases()[GetParam()];
  Dataset data = test_case.make_data();
  const uint64_t k = std::max(test_case.k, data.MaxPointMultiplicity());

  auto shared = std::make_shared<Dataset>(data);
  LocalServer ref_server(shared, k);
  auto ref_crawler = test_case.make_crawler();
  CrawlResult reference = ref_crawler->Crawl(&ref_server);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();

  // Budget 11 with batches of 4: every other refill period ends mid-batch.
  LocalServer base(shared, k);
  BudgetServer budget(&base, 11);
  auto crawler = test_case.make_crawler();
  CrawlOptions options;
  options.batch_size = 4;

  CrawlResult result = crawler->Crawl(&budget, options);
  int rounds = 1;
  while (result.status.IsResourceExhausted() && rounds < 10000) {
    ASSERT_NE(result.resume_state, nullptr);
    budget.Refill(11);  // the next day's quota
    result = crawler->Resume(&budget, result.resume_state, options);
    ++rounds;
  }
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(rounds, 2) << "test needs genuine mid-batch interruptions";
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, data))
      << test_case.label << ": lost or double-collected work across "
      << "mid-batch interruptions";
  EXPECT_EQ(result.queries_issued, reference.queries_issued)
      << test_case.label
      << ": mid-batch interruption must not waste or save queries";
  EXPECT_EQ(result.queries_issued, base.queries_served())
      << test_case.label << ": refused batch members must not reach the "
      << "base server";
}

TEST(ResumeTest, ResumingWithWrongAlgorithmFails) {
  SyntheticNumericOptions gen;
  gen.d = 1;
  gen.n = 200;
  gen.value_range = 100;
  gen.seed = 11;
  auto data = std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));
  LocalServer server(data, 4);

  RankShrink rank_shrink;
  CrawlOptions options;
  options.max_queries = 3;
  CrawlResult partial = rank_shrink.Crawl(&server, options);
  ASSERT_TRUE(partial.status.IsResourceExhausted());

  BinaryShrink binary_shrink;
  CrawlResult mismatch =
      binary_shrink.Resume(&server, partial.resume_state);
  EXPECT_TRUE(mismatch.status.IsInvalidArgument());
}

TEST(ResumeTest, ResumeWithoutStateFails) {
  SyntheticNumericOptions gen;
  gen.d = 1;
  gen.n = 50;
  gen.seed = 12;
  auto data = std::make_shared<Dataset>(GenerateSyntheticNumeric(gen));
  LocalServer server(data, 4);
  RankShrink crawler;
  CrawlResult result = crawler.Resume(&server, nullptr);
  EXPECT_TRUE(result.status.IsInvalidArgument());
}

TEST(ResumeTest, ZeroBudgetMakesNoProgressButRemainsResumable) {
  SyntheticNumericOptions gen;
  gen.d = 1;
  gen.n = 300;
  gen.value_range = 100;
  gen.seed = 13;
  Dataset data = GenerateSyntheticNumeric(gen);
  const uint64_t k = std::max<uint64_t>(4, data.MaxPointMultiplicity());
  auto shared = std::make_shared<Dataset>(data);
  LocalServer server(shared, k);

  RankShrink crawler;
  CrawlOptions zero;
  zero.max_queries = 0;
  CrawlResult result = crawler.Crawl(&server, zero);
  ASSERT_TRUE(result.status.IsResourceExhausted());
  EXPECT_EQ(result.queries_issued, 0u);

  CrawlResult done = crawler.Resume(&server, result.resume_state);
  ASSERT_TRUE(done.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(done.extracted, data));
}

}  // namespace
}  // namespace hdc
