// Copyright (c) hdc authors. Apache-2.0 license.
//
// The write-ahead frontier log. Every round boundary appends a durable
// delta; replaying the log after a crash reconstructs the state of the last
// committed round, and a torn tail — the only damage a crash can inflict,
// since snapshots are written atomically — is discarded, never misread.
#include "core/frontier_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/local_server.h"
#include "util/macros.h"

namespace hdc {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

uint64_t FileSize(const std::string& path) {
  return ReadWholeFile(path).size();
}

Dataset MakeData(uint64_t seed) {
  SyntheticMixedOptions gen;
  gen.domain_sizes = {4, 5};
  gen.num_numeric = 1;
  gen.n = 500;
  gen.value_range = 120;
  gen.seed = seed;
  return GenerateSyntheticMixed(gen);
}

TEST(FrontierLogTest, ReplayReconstructsTheInterruptedState) {
  Dataset data = MakeData(61);
  auto shared = std::make_shared<Dataset>(data);
  const uint64_t k = std::max<uint64_t>(8, data.MaxPointMultiplicity());

  // Reference, uninterrupted.
  LocalServer ref_server(shared, k);
  HybridCrawler ref_crawler;
  CrawlResult reference = ref_crawler.Crawl(&ref_server);
  ASSERT_TRUE(reference.status.ok());

  const std::string path = ::testing::TempDir() + "/hdc_flog_replay.log";
  std::remove(path.c_str());

  // Interrupted crawl, logging every round.
  LocalServer server(shared, k);
  std::unique_ptr<FrontierLogWriter> log;
  ASSERT_TRUE(FrontierLogWriter::Open(path, FrontierLogOptions{}, &log).ok());
  HybridCrawler crawler;
  CrawlOptions options;
  options.max_queries = 25;
  options.frontier_log = log.get();
  CrawlResult partial = crawler.Crawl(&server, options);
  ASSERT_TRUE(partial.status.IsResourceExhausted());
  ASSERT_GT(log->commits(), 0u);

  // Replay recovers exactly the state at the last committed round: with a
  // commit every round, that is the in-memory resume state.
  std::shared_ptr<CrawlState> replayed;
  ASSERT_TRUE(ReplayFrontierLog(path, data.schema(), &replayed).ok());
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->queries_issued, partial.resume_state->queries_issued);
  EXPECT_TRUE(Dataset::MultisetEquals(replayed->extracted,
                                      partial.resume_state->extracted));

  // Resuming the replayed state finishes with reference totals.
  HybridCrawler resumed_crawler;
  CrawlResult done = resumed_crawler.Resume(&server, replayed);
  ASSERT_TRUE(done.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(done.extracted, data));
  EXPECT_EQ(done.queries_issued, reference.queries_issued);
}

TEST(FrontierLogTest, TornTailIsDiscardedAtEveryByteOffset) {
  Dataset data = MakeData(62);
  auto shared = std::make_shared<Dataset>(data);
  const uint64_t k = std::max<uint64_t>(8, data.MaxPointMultiplicity());

  const std::string path = ::testing::TempDir() + "/hdc_flog_torn.log";
  std::remove(path.c_str());
  LocalServer server(shared, k);
  std::unique_ptr<FrontierLogWriter> log;
  FrontierLogOptions log_options;
  log_options.sync = false;  // speed: durability is not what we test here
  ASSERT_TRUE(FrontierLogWriter::Open(path, log_options, &log).ok());
  HybridCrawler crawler;
  CrawlOptions options;
  options.frontier_log = log.get();
  CrawlResult full = crawler.Crawl(&server, options);
  ASSERT_TRUE(full.status.ok());

  const std::string bytes = ReadWholeFile(path);
  // Snapshots are written via atomic rename, so a crash can only tear the
  // *appended* region after the snapshot.
  const std::string marker = "snapshot-end\n";
  const size_t marker_pos = bytes.find(marker);
  ASSERT_NE(marker_pos, std::string::npos);
  const size_t tail_start = marker_pos + marker.size();
  ASSERT_LT(tail_start, bytes.size()) << "crawl appended no round records";

  const std::string torn_path = ::testing::TempDir() + "/hdc_flog_torn_cut.log";
  uint64_t last_queries = 0;
  for (size_t offset = tail_start; offset <= bytes.size(); ++offset) {
    std::ofstream out(torn_path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, offset);
    out.close();

    std::shared_ptr<CrawlState> replayed;
    Status s = ReplayFrontierLog(torn_path, data.schema(), &replayed);
    ASSERT_TRUE(s.ok()) << "offset " << offset << ": " << s.ToString();
    ASSERT_NE(replayed, nullptr) << "offset " << offset;
    // Progress is monotone in the prefix length and never overshoots the
    // final state.
    EXPECT_GE(replayed->queries_issued, last_queries) << "offset " << offset;
    EXPECT_LE(replayed->queries_issued, full.queries_issued);
    last_queries = replayed->queries_issued;
  }
  // The untorn log replays to the completed crawl.
  std::shared_ptr<CrawlState> final_state;
  ASSERT_TRUE(ReplayFrontierLog(path, data.schema(), &final_state).ok());
  EXPECT_EQ(final_state->queries_issued, full.queries_issued);
  EXPECT_TRUE(final_state->Finished());
  EXPECT_TRUE(Dataset::MultisetEquals(final_state->extracted, data));
}

TEST(FrontierLogTest, RotationResnapshotsAndStaysReplayable) {
  Dataset data = MakeData(63);
  auto shared = std::make_shared<Dataset>(data);
  const uint64_t k = std::max<uint64_t>(8, data.MaxPointMultiplicity());

  const std::string path = ::testing::TempDir() + "/hdc_flog_rotate.log";
  std::remove(path.c_str());
  LocalServer server(shared, k);
  std::unique_ptr<FrontierLogWriter> log;
  FrontierLogOptions log_options;
  log_options.rotate_bytes = 512;  // force frequent re-snapshots
  log_options.sync = false;
  ASSERT_TRUE(FrontierLogWriter::Open(path, log_options, &log).ok());
  HybridCrawler crawler;
  CrawlOptions options;
  options.frontier_log = log.get();
  CrawlResult full = crawler.Crawl(&server, options);
  ASSERT_TRUE(full.status.ok());

  // Rotation kept the file near the rotate threshold instead of growing
  // with the whole crawl history.
  EXPECT_LT(FileSize(path), 512u + 8u * 4096u);

  std::shared_ptr<CrawlState> replayed;
  ASSERT_TRUE(ReplayFrontierLog(path, data.schema(), &replayed).ok());
  EXPECT_TRUE(replayed->Finished());
  EXPECT_EQ(replayed->queries_issued, full.queries_issued);
  EXPECT_TRUE(Dataset::MultisetEquals(replayed->extracted, data));
}

TEST(FrontierLogTest, MissingLogIsNotFound) {
  std::shared_ptr<CrawlState> replayed;
  Status s = ReplayFrontierLog(::testing::TempDir() + "/hdc_no_such_flog",
                               Schema::Numeric(1), &replayed);
  EXPECT_EQ(s.code(), Status::Code::kNotFound) << s.ToString();
  EXPECT_EQ(replayed, nullptr);
}

TEST(FrontierLogTest, NoOpCommitsDoNotGrowTheLog) {
  Dataset data = MakeData(64);
  auto shared = std::make_shared<Dataset>(data);
  const uint64_t k = std::max<uint64_t>(8, data.MaxPointMultiplicity());

  const std::string path = ::testing::TempDir() + "/hdc_flog_noop.log";
  std::remove(path.c_str());
  LocalServer server(shared, k);
  std::unique_ptr<FrontierLogWriter> log;
  ASSERT_TRUE(FrontierLogWriter::Open(path, FrontierLogOptions{}, &log).ok());
  HybridCrawler crawler;
  CrawlOptions options;
  options.max_queries = 15;
  options.frontier_log = log.get();
  CrawlResult partial = crawler.Crawl(&server, options);
  ASSERT_TRUE(partial.status.IsResourceExhausted());

  const uint64_t size_before = FileSize(path);
  const uint64_t commits_before = log->commits();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log->Commit(*partial.resume_state).ok());
  }
  EXPECT_EQ(FileSize(path), size_before);
  EXPECT_EQ(log->commits(), commits_before);
}

TEST(FrontierLogTest, OnCommitFiresOncePerRoundInOrder) {
  Dataset data = MakeData(65);
  auto shared = std::make_shared<Dataset>(data);
  const uint64_t k = std::max<uint64_t>(8, data.MaxPointMultiplicity());

  const std::string path = ::testing::TempDir() + "/hdc_flog_cb.log";
  std::remove(path.c_str());
  LocalServer server(shared, k);
  std::vector<uint64_t> seqs;
  FrontierLogOptions log_options;
  log_options.sync = false;
  log_options.on_commit = [&seqs](uint64_t seq) { seqs.push_back(seq); };
  std::unique_ptr<FrontierLogWriter> log;
  ASSERT_TRUE(FrontierLogWriter::Open(path, log_options, &log).ok());
  HybridCrawler crawler;
  CrawlOptions options;
  options.frontier_log = log.get();
  CrawlResult full = crawler.Crawl(&server, options);
  ASSERT_TRUE(full.status.ok());

  ASSERT_EQ(seqs.size(), log->commits());
  for (size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], seqs[i - 1] + 1);
  }
}

}  // namespace
}  // namespace hdc
