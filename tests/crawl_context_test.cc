// Copyright (c) hdc authors. Apache-2.0 license.
//
// Direct tests of the crawl framework plumbing (CrawlContext): budget
// accounting, oracle pruning, interruption semantics, trace recording and
// collection filters — independent of any specific algorithm.
#include "core/crawl_context.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/crawl_sink.h"
#include "core/rank_shrink.h"
#include "server/decorators.h"
#include "server/local_server.h"

namespace hdc {
namespace {

class ContextFixture : public ::testing::Test {
 protected:
  ContextFixture() {
    SchemaPtr schema = Schema::NumericBounded({{0, 100}});
    auto data = std::make_shared<Dataset>(schema);
    for (Value v = 0; v < 20; ++v) data->Add(Tuple({v * 5}));
    server_ = std::make_unique<LocalServer>(data, /*k=*/4);
    state_ = std::make_shared<RankShrinkState>(schema);
  }

  Query Full() { return Query::FullSpace(server_->schema()); }

  std::unique_ptr<LocalServer> server_;
  std::shared_ptr<RankShrinkState> state_;
};

TEST_F(ContextFixture, BudgetBoundaryIsExact) {
  CrawlOptions options;
  options.max_queries = 2;
  CrawlContext ctx(server_.get(), state_.get(), options);
  Response r;
  EXPECT_EQ(ctx.Issue(Full(), &r), CrawlContext::Outcome::kOverflow);
  EXPECT_EQ(ctx.Issue(Full().WithNumericRange(0, 0, 10), &r),
            CrawlContext::Outcome::kResolved);
  // Third issue must be refused without touching the server.
  EXPECT_EQ(ctx.Issue(Full(), &r), CrawlContext::Outcome::kStop);
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(server_->queries_served(), 2u);
  EXPECT_EQ(ctx.run_queries(), 2u);
  EXPECT_EQ(state_->queries_issued, 2u);
}

TEST_F(ContextFixture, OraclePruningCostsNothing) {
  FunctionOracle deny_all([](const Query&) { return false; });
  CrawlOptions options;
  options.oracle = &deny_all;
  CrawlContext ctx(server_.get(), state_.get(), options);
  Response r;
  EXPECT_EQ(ctx.Issue(Full(), &r), CrawlContext::Outcome::kPrunedEmpty);
  EXPECT_TRUE(r.resolved());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(server_->queries_served(), 0u);
  EXPECT_EQ(ctx.run_queries(), 0u);
  EXPECT_FALSE(ctx.stopped());
}

TEST_F(ContextFixture, SeenRowsAccumulateAcrossResponses) {
  CrawlContext ctx(server_.get(), state_.get(), {});
  Response r;
  ASSERT_EQ(ctx.Issue(Full(), &r), CrawlContext::Outcome::kOverflow);
  EXPECT_EQ(state_->seen_rows.size(), 4u);  // k tuples seen
  ASSERT_EQ(ctx.Issue(Full(), &r), CrawlContext::Outcome::kOverflow);
  EXPECT_EQ(state_->seen_rows.size(), 4u);  // same k rows, no growth
  ASSERT_EQ(ctx.Issue(Full().WithNumericRange(0, 0, 10), &r),
            CrawlContext::Outcome::kResolved);
  EXPECT_GE(state_->seen_rows.size(), 4u);
}

TEST_F(ContextFixture, CollectResponseAppendsWholeBag) {
  CrawlContext ctx(server_.get(), state_.get(), {});
  Response r;
  ASSERT_EQ(ctx.Issue(Full().WithNumericRange(0, 0, 10), &r),
            CrawlContext::Outcome::kResolved);
  ctx.CollectResponse(r);
  EXPECT_EQ(state_->extracted.size(), 3u);  // values 0, 5, 10
}

TEST_F(ContextFixture, CollectFilteredAppliesPredicate) {
  CrawlContext ctx(server_.get(), state_.get(), {});
  std::vector<ReturnedTuple> bag = {
      {Tuple({5}), 1}, {Tuple({50}), 10}, {Tuple({95}), 19}};
  ctx.CollectFiltered(bag, Full().WithNumericRange(0, 0, 60));
  EXPECT_EQ(state_->extracted.size(), 2u);
}

TEST_F(ContextFixture, SetFatalStopsAndSticks) {
  CrawlContext ctx(server_.get(), state_.get(), {});
  ctx.SetFatal(Status::Unsolvable("test"));
  EXPECT_TRUE(ctx.stopped());
  EXPECT_TRUE(state_->fatal.IsUnsolvable());
  Response r;
  EXPECT_EQ(ctx.Issue(Full(), &r), CrawlContext::Outcome::kStop);
  EXPECT_EQ(server_->queries_served(), 0u);

  // A fresh context over the same state starts stopped.
  CrawlContext again(server_.get(), state_.get(), {});
  EXPECT_TRUE(again.stopped());
}

TEST_F(ContextFixture, TraceRecordsPerQueryEntries) {
  CrawlOptions options;
  options.record_trace = true;
  CrawlContext ctx(server_.get(), state_.get(), options);
  Response r;
  ASSERT_EQ(ctx.Issue(Full(), &r), CrawlContext::Outcome::kOverflow);
  ASSERT_EQ(ctx.Issue(Full().WithNumericRange(0, 0, 10), &r),
            CrawlContext::Outcome::kResolved);
  ctx.CollectResponse(r);
  ASSERT_EQ(state_->trace.size(), 2u);
  EXPECT_EQ(state_->trace[0].query_index, 1u);
  EXPECT_FALSE(state_->trace[0].resolved);
  EXPECT_EQ(state_->trace[0].returned, 4u);
  EXPECT_EQ(state_->trace[0].tuples_collected, 0u);
  EXPECT_TRUE(state_->trace[1].resolved);
  EXPECT_EQ(state_->trace[1].returned, 3u);
  // Collection after the issue updates the last entry.
  EXPECT_EQ(state_->trace[1].tuples_collected, 3u);
}

TEST_F(ContextFixture, ExternalFailureBecomesInterrupt) {
  class FailingServer : public HiddenDbServer {
   public:
    explicit FailingServer(HiddenDbServer* base) : base_(base) {}
    Status Issue(const Query&, Response*) override {
      return Status::Internal("boom");
    }
    uint64_t k() const override { return base_->k(); }
    const SchemaPtr& schema() const override { return base_->schema(); }

   private:
    HiddenDbServer* base_;
  };

  FailingServer failing(server_.get());
  CrawlContext ctx(&failing, state_.get(), {});
  Response r;
  EXPECT_EQ(ctx.Issue(Full(), &r), CrawlContext::Outcome::kStop);
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(ctx.interrupt().code(), Status::Code::kInternal);
  // Not fatal: the state stays clean for a resume.
  EXPECT_TRUE(state_->fatal.ok());
}

TEST_F(ContextFixture, BatchAppliesBudgetPerMember) {
  CrawlOptions options;
  options.max_queries = 2;
  CrawlContext ctx(server_.get(), state_.get(), options);
  std::vector<Query> queries = {Full().WithNumericRange(0, 0, 10),
                                Full().WithNumericRange(0, 11, 20),
                                Full().WithNumericRange(0, 21, 30)};
  std::vector<Response> responses;
  auto outcomes = ctx.IssueBatch(queries, &responses);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0], CrawlContext::Outcome::kResolved);
  EXPECT_EQ(outcomes[1], CrawlContext::Outcome::kResolved);
  // The third member crosses the run budget: refused before the server.
  EXPECT_EQ(outcomes[2], CrawlContext::Outcome::kStop);
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(server_->queries_served(), 2u);
  EXPECT_EQ(ctx.run_queries(), 2u);
  EXPECT_EQ(state_->queries_issued, 2u);
}

TEST_F(ContextFixture, BatchPrunesPerMemberWithoutSpendingQueries) {
  // Prune everything left of 50; pruned members must not consume budget.
  FunctionOracle deny_low([](const Query& q) { return q.lo(0) >= 50; });
  CrawlOptions options;
  options.oracle = &deny_low;
  CrawlContext ctx(server_.get(), state_.get(), options);
  std::vector<Query> queries = {Full().WithNumericRange(0, 0, 40),
                                Full().WithNumericRange(0, 50, 60),
                                Full().WithNumericRange(0, 10, 20)};
  std::vector<Response> responses;
  auto outcomes = ctx.IssueBatch(queries, &responses);
  EXPECT_EQ(outcomes[0], CrawlContext::Outcome::kPrunedEmpty);
  EXPECT_EQ(outcomes[1], CrawlContext::Outcome::kResolved);
  EXPECT_EQ(outcomes[2], CrawlContext::Outcome::kPrunedEmpty);
  EXPECT_TRUE(responses[0].resolved());
  EXPECT_EQ(responses[0].size(), 0u);
  EXPECT_EQ(server_->queries_served(), 1u);
  EXPECT_EQ(ctx.run_queries(), 1u);
  EXPECT_FALSE(ctx.stopped());
}

TEST_F(ContextFixture, BatchTracesInIssueOrder) {
  CrawlOptions options;
  options.record_trace = true;
  CrawlContext ctx(server_.get(), state_.get(), options);
  std::vector<Query> queries = {Full(), Full().WithNumericRange(0, 0, 10)};
  std::vector<Response> responses;
  auto outcomes = ctx.IssueBatch(queries, &responses);
  EXPECT_EQ(outcomes[0], CrawlContext::Outcome::kOverflow);
  EXPECT_EQ(outcomes[1], CrawlContext::Outcome::kResolved);
  ASSERT_EQ(state_->trace.size(), 2u);
  EXPECT_EQ(state_->trace[0].query_index, 1u);
  EXPECT_FALSE(state_->trace[0].resolved);
  EXPECT_EQ(state_->trace[0].returned, 4u);
  EXPECT_EQ(state_->trace[1].query_index, 2u);
  EXPECT_TRUE(state_->trace[1].resolved);
  EXPECT_EQ(state_->trace[1].returned, 3u);
}

TEST_F(ContextFixture, BatchStopsSuffixOnServerFailure) {
  // A budget decorator that pays for one member then refuses the rest.
  BudgetServer budget(server_.get(), 1);
  CrawlContext ctx(&budget, state_.get(), {});
  std::vector<Query> queries = {Full().WithNumericRange(0, 0, 10),
                                Full().WithNumericRange(0, 11, 20),
                                Full().WithNumericRange(0, 21, 30)};
  std::vector<Response> responses;
  auto outcomes = ctx.IssueBatch(queries, &responses);
  EXPECT_EQ(outcomes[0], CrawlContext::Outcome::kResolved);
  EXPECT_EQ(outcomes[1], CrawlContext::Outcome::kStop);
  EXPECT_EQ(outcomes[2], CrawlContext::Outcome::kStop);
  EXPECT_TRUE(ctx.stopped());
  EXPECT_TRUE(ctx.interrupt().IsResourceExhausted());
  // The answered prefix is recorded; the suffix cost nothing.
  EXPECT_EQ(ctx.run_queries(), 1u);
  EXPECT_EQ(server_->queries_served(), 1u);
  // Not fatal: the state stays clean for a resume.
  EXPECT_TRUE(state_->fatal.ok());
}

TEST_F(ContextFixture, SingleElementBatchMatchesIssue) {
  CrawlContext ctx(server_.get(), state_.get(), {});
  std::vector<Response> batch_responses;
  auto outcomes =
      ctx.IssueBatch({Full().WithNumericRange(0, 0, 10)}, &batch_responses);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0], CrawlContext::Outcome::kResolved);
  EXPECT_EQ(batch_responses[0].size(), 3u);
  EXPECT_EQ(ctx.run_queries(), 1u);
}

TEST_F(ContextFixture, TupleSinkFiresOnBothCollectPaths) {
  size_t delivered = 0;
  CallbackSink sink([&delivered](const Tuple&) { ++delivered; });
  CrawlOptions options;
  options.sink = &sink;
  CrawlContext ctx(server_.get(), state_.get(), options);
  Response r;
  ASSERT_EQ(ctx.Issue(Full().WithNumericRange(0, 0, 10), &r),
            CrawlContext::Outcome::kResolved);
  ctx.CollectResponse(r);
  EXPECT_EQ(delivered, 3u);
  std::vector<ReturnedTuple> bag = {{Tuple({90}), 18}};
  ctx.CollectFiltered(bag, Full());
  EXPECT_EQ(delivered, 4u);
}

}  // namespace
}  // namespace hdc
