// Copyright (c) hdc authors. Apache-2.0 license.
//
// The HiddenDbServer conformance suite: one reusable, value-parameterized
// battery of contract tests that every server backend must pass — the
// in-process LocalServer, a decorated metering stack, a CrawlService
// ServerSession, the RemoteServer loopback transport, and any future
// backend (HTTP, sharded, cached): implement a BackendFactory, add one
// INSTANTIATE_TEST_SUITE_P line, and the whole contract is enforced.
//
// What the contract covers (server/server.h):
//   - the top-k interface: overflow flagging, exactly-k truncation, fixed
//     deterministic ranking;
//   - IssueBatch prefix semantics: in-order responses, one-element batch
//     == Issue, budget truncation mid-batch with a valid paid-for prefix,
//     refill + suffix resubmission losing nothing;
//   - stats accounting: the backend bills exactly the answered queries;
//   - conversation fidelity: a full crawl drives the backend through the
//     byte-identical conversation a reference LocalServer produces.
//
// Every factory builds its backend over the *same* canonical dataset,
// ranking seed and k, so "identical to the reference" is well-defined
// across process and wire boundaries.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/decorators.h"
#include "server/local_server.h"
#include "server/server.h"

namespace hdc {
namespace conformance {

/// Budget argument meaning "no budget".
inline constexpr uint64_t kNoBudget = UINT64_MAX;

/// The canonical data space: 2 categorical + 1 numeric attributes, 500
/// tuples, mild skew — small enough for fast suites, rich enough to
/// produce overflows, thin slices and empty regions at k = 8.
inline constexpr uint64_t kConformanceK = 8;

inline std::shared_ptr<const Dataset> ConformanceDataset() {
  static const std::shared_ptr<const Dataset> dataset = [] {
    SyntheticMixedOptions gen;
    gen.domain_sizes = {4, 6};
    gen.num_numeric = 1;
    gen.n = 500;
    gen.value_range = 200;
    gen.zipf_s = 0.7;
    gen.seed = 97;
    return std::make_shared<const Dataset>(GenerateSyntheticMixed(gen));
  }();
  return dataset;
}

/// One backend instance under test plus whatever owns it (index, service,
/// endpoint, live connection...). Destroying the handle tears the whole
/// backend down.
class BackendHandle {
 public:
  virtual ~BackendHandle() = default;

  /// The server the tests talk to. Owned by the handle.
  virtual HiddenDbServer* server() = 0;

  /// Queries the backend has billed this conversation (its own
  /// accounting, fetched over the wire for remote backends).
  virtual uint64_t queries_served() = 0;

  /// Grants a fresh budget allotment. Only called on handles created with
  /// a budget.
  virtual void RefillBudget(uint64_t max_queries) = 0;
};

/// A named way to build fresh backends over the canonical dataset.
struct BackendFactory {
  std::string name;

  /// `budget` is kNoBudget or a hard query budget the backend must
  /// enforce with BudgetServer semantics.
  std::function<std::unique_ptr<BackendHandle>(uint64_t budget)> make;
};

// --- helpers ----------------------------------------------------------------

/// Deterministic mixed query script covering resolved, overflowing, thin
/// and empty responses. Used for sequential-vs-batched comparisons.
inline std::vector<Query> ConformanceScript(const SchemaPtr& schema) {
  std::vector<Query> script;
  script.push_back(Query::FullSpace(schema));          // overflow
  for (Value c = 1; c <= 3; ++c) {                     // slices
    script.push_back(
        Query::FullSpace(schema).WithCategoricalEquals(0, c));
  }
  script.push_back(Query::FullSpace(schema)
                       .WithCategoricalEquals(0, 2)
                       .WithCategoricalEquals(1, 3));  // thin slice pair
  script.push_back(
      Query::FullSpace(schema).WithNumericRange(2, 0, 40));   // band
  script.push_back(
      Query::FullSpace(schema).WithNumericRange(2, -500, -1));  // empty
  script.push_back(Query::FullSpace(schema)
                       .WithCategoricalEquals(0, 1)
                       .WithCategoricalEquals(1, 1)
                       .WithNumericRange(2, 0, 199));  // near-point
  return script;
}

/// Compact digest of a response: overflow flag, size, and every tuple
/// (hidden id + values) in server order. Equal digests == identical
/// response bytes.
inline std::string Digest(const Response& response) {
  std::ostringstream out;
  out << (response.overflow ? "OVERFLOW" : "resolved") << ' '
      << response.size();
  for (const ReturnedTuple& rt : response.tuples) {
    out << " #" << rt.hidden_id << rt.tuple.ToString();
  }
  return out.str();
}

/// Digest of a whole conversation transcript.
inline std::string Digest(const std::vector<Response>& responses) {
  std::ostringstream out;
  for (size_t i = 0; i < responses.size(); ++i) {
    out << i << ": " << Digest(responses[i]) << '\n';
  }
  return out.str();
}

/// A fresh reference LocalServer over the canonical dataset — the fixture
/// every backend's answers are compared against.
inline std::unique_ptr<LocalServer> ReferenceServer() {
  return std::make_unique<LocalServer>(ConformanceDataset(), kConformanceK);
}

// --- the suite --------------------------------------------------------------

class ServerConformanceTest : public ::testing::TestWithParam<BackendFactory> {
 protected:
  std::unique_ptr<BackendHandle> Make(uint64_t budget = kNoBudget) {
    return GetParam().make(budget);
  }
};

TEST_P(ServerConformanceTest, DeclaresTheCanonicalDataSpace) {
  auto backend = Make();
  HiddenDbServer* server = backend->server();
  EXPECT_EQ(server->k(), kConformanceK);
  EXPECT_TRUE(*server->schema() == *ConformanceDataset()->schema())
      << "backend must present the canonical schema: "
      << server->schema()->ToString();
  EXPECT_GE(server->batch_parallelism(), 1u);
}

TEST_P(ServerConformanceTest, TopKOverflowFlagging) {
  auto backend = Make();
  HiddenDbServer* server = backend->server();
  auto reference = ReferenceServer();

  for (const Query& query : ConformanceScript(server->schema())) {
    const uint64_t matches = reference->CountMatches(query);
    Response response;
    ASSERT_TRUE(server->Issue(query, &response).ok());
    if (matches > kConformanceK) {
      EXPECT_TRUE(response.overflow) << query.ToString();
      EXPECT_EQ(response.size(), kConformanceK) << query.ToString();
    } else {
      EXPECT_FALSE(response.overflow) << query.ToString();
      EXPECT_EQ(response.size(), matches) << query.ToString();
    }
  }
}

TEST_P(ServerConformanceTest, RankingIsDeterministic) {
  auto backend = Make();
  HiddenDbServer* server = backend->server();
  const Query full = Query::FullSpace(server->schema());
  Response first, second;
  ASSERT_TRUE(server->Issue(full, &first).ok());
  ASSERT_TRUE(server->Issue(full, &second).ok());
  EXPECT_EQ(Digest(first), Digest(second))
      << "re-issuing a query must return the same k tuples in the same "
         "order";
}

TEST_P(ServerConformanceTest, AnswersMatchReferenceLocalServer) {
  auto backend = Make();
  HiddenDbServer* server = backend->server();
  auto reference = ReferenceServer();

  for (const Query& query : ConformanceScript(server->schema())) {
    Response got, want;
    ASSERT_TRUE(server->Issue(query, &got).ok());
    ASSERT_TRUE(reference->Issue(query, &want).ok());
    EXPECT_EQ(Digest(got), Digest(want)) << query.ToString();
  }
}

TEST_P(ServerConformanceTest, BatchEqualsSequentialConversation) {
  const std::vector<Query> script =
      ConformanceScript(ConformanceDataset()->schema());

  auto sequential = Make();
  std::vector<Response> expected;
  for (const Query& query : script) {
    Response response;
    ASSERT_TRUE(sequential->server()->Issue(query, &response).ok());
    expected.push_back(std::move(response));
  }

  auto batched = Make();
  std::vector<Response> got;
  ASSERT_TRUE(batched->server()->IssueBatch(script, &got).ok());
  ASSERT_EQ(got.size(), script.size());
  EXPECT_EQ(Digest(got), Digest(expected));
}

TEST_P(ServerConformanceTest, OneElementBatchIsExactlyIssue) {
  auto backend = Make();
  HiddenDbServer* server = backend->server();
  const Query full = Query::FullSpace(server->schema());

  Response via_issue;
  ASSERT_TRUE(server->Issue(full, &via_issue).ok());
  std::vector<Response> via_batch;
  ASSERT_TRUE(server->IssueBatch({full}, &via_batch).ok());
  ASSERT_EQ(via_batch.size(), 1u);
  EXPECT_EQ(Digest(via_batch[0]), Digest(via_issue));
  EXPECT_EQ(backend->queries_served(), 2u);
}

TEST_P(ServerConformanceTest, BudgetTruncatesMidBatchWithValidPrefix) {
  const std::vector<Query> script =
      ConformanceScript(ConformanceDataset()->schema());
  ASSERT_GE(script.size(), 4u);
  const uint64_t budget = script.size() / 2;

  auto backend = Make(budget);
  std::vector<Response> prefix;
  Status s = backend->server()->IssueBatch(script, &prefix);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  ASSERT_EQ(prefix.size(), budget)
      << "the affordable prefix must be answered and returned";

  // The prefix is valid, paid-for work: it matches the reference answers.
  auto reference = ReferenceServer();
  for (size_t i = 0; i < prefix.size(); ++i) {
    Response want;
    ASSERT_TRUE(reference->Issue(script[i], &want).ok());
    EXPECT_EQ(Digest(prefix[i]), Digest(want)) << "member " << i;
  }
  EXPECT_EQ(backend->queries_served(), budget);

  // A further call is refused outright...
  std::vector<Response> refused;
  EXPECT_TRUE(backend->server()
                  ->IssueBatch({script.back()}, &refused)
                  .IsResourceExhausted());
  EXPECT_TRUE(refused.empty());

  // ...until a refill; resubmitting the unanswered suffix completes the
  // conversation with nothing lost or double-spent.
  backend->RefillBudget(script.size());
  const std::vector<Query> suffix(script.begin() + prefix.size(),
                                  script.end());
  std::vector<Response> rest;
  ASSERT_TRUE(backend->server()->IssueBatch(suffix, &rest).ok());
  ASSERT_EQ(rest.size(), suffix.size());
  for (size_t i = 0; i < rest.size(); ++i) {
    Response want;
    ASSERT_TRUE(reference->Issue(suffix[i], &want).ok());
    EXPECT_EQ(Digest(rest[i]), Digest(want)) << "suffix member " << i;
  }
  EXPECT_EQ(backend->queries_served(), script.size());
}

TEST_P(ServerConformanceTest, StatsBillExactlyTheAnsweredQueries) {
  auto backend = Make();
  HiddenDbServer* server = backend->server();
  const std::vector<Query> script = ConformanceScript(server->schema());

  EXPECT_EQ(backend->queries_served(), 0u);
  std::vector<Response> responses;
  ASSERT_TRUE(server->IssueBatch(script, &responses).ok());
  EXPECT_EQ(backend->queries_served(), script.size());
  Response one;
  ASSERT_TRUE(server->Issue(script[0], &one).ok());
  EXPECT_EQ(backend->queries_served(), script.size() + 1);
}

TEST_P(ServerConformanceTest, FullCrawlIsByteIdenticalToReference) {
  // Drive a complete optimal crawl through the backend and through the
  // reference server, recording both conversations query by query. The
  // transcripts — queries asked, tuples returned, overflow flags, in
  // order — must be identical: a backend that answers correctly but
  // perturbs the conversation would silently change every cost result in
  // the paper's reproduction.
  auto record_conversation = [](HiddenDbServer* server, std::string* log) {
    ObservedServer observed(server, [log](const Query& q, const Response& r) {
      *log += q.ToString() + " -> " + Digest(r) + "\n";
    });
    std::unique_ptr<Crawler> crawler =
        MakeOptimalCrawler(*server->schema());
    return crawler->Crawl(&observed);
  };

  auto backend = Make();
  std::string backend_log;
  const CrawlResult backend_result =
      record_conversation(backend->server(), &backend_log);
  ASSERT_TRUE(backend_result.status.ok())
      << backend_result.status.ToString();

  auto reference = ReferenceServer();
  std::string reference_log;
  const CrawlResult reference_result =
      record_conversation(reference.get(), &reference_log);
  ASSERT_TRUE(reference_result.status.ok());

  EXPECT_TRUE(
      Dataset::MultisetEquals(backend_result.extracted, *ConformanceDataset()))
      << "extraction must be the exact multiset";
  EXPECT_EQ(backend_result.queries_issued, reference_result.queries_issued);
  EXPECT_EQ(backend_log, reference_log);
  EXPECT_EQ(backend->queries_served(), reference_result.queries_issued);
}

}  // namespace conformance
}  // namespace hdc
