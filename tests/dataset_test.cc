// Copyright (c) hdc authors. Apache-2.0 license.
#include "data/dataset.h"

#include <gtest/gtest.h>

#include <fstream>

#include "util/random.h"

namespace hdc {
namespace {

Dataset SmallMixed() {
  SchemaPtr schema = Schema::Make({
      AttributeSpec::Categorical("C", 3),
      AttributeSpec::NumericBounded("N", 0, 100),
  });
  Dataset d(schema);
  d.Add(Tuple({1, 10}));
  d.Add(Tuple({1, 10}));
  d.Add(Tuple({2, 10}));
  d.Add(Tuple({3, 50}));
  return d;
}

TEST(DatasetTest, SizeAndAccess) {
  Dataset d = SmallMixed();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.tuple(3), Tuple({3, 50}));
}

TEST(DatasetTest, ValidateRejectsOutOfDomain) {
  Dataset d = SmallMixed();
  d.AddUnchecked(Tuple({4, 10}));  // categorical value 4 > domain 3
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsWrongArity) {
  Dataset d = SmallMixed();
  d.AddUnchecked(Tuple({1}));
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, MaxPointMultiplicity) {
  Dataset d = SmallMixed();
  EXPECT_EQ(d.MaxPointMultiplicity(), 2u);
  d.Add(Tuple({1, 10}));
  EXPECT_EQ(d.MaxPointMultiplicity(), 3u);
}

TEST(DatasetTest, DistinctPointCount) {
  EXPECT_EQ(SmallMixed().DistinctPointCount(), 3u);
}

TEST(DatasetTest, AttributeStats) {
  Dataset d = SmallMixed();
  auto stats = d.ComputeAttributeStats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "C");
  EXPECT_EQ(stats[0].distinct_values, 3u);
  EXPECT_EQ(stats[1].distinct_values, 2u);
  EXPECT_EQ(stats[1].min_value, 10);
  EXPECT_EQ(stats[1].max_value, 50);
}

TEST(DatasetTest, BernoulliSampleBounds) {
  Rng rng(1);
  SchemaPtr schema = Schema::Numeric(1);
  Dataset d(schema);
  for (int i = 0; i < 10000; ++i) d.AddUnchecked(Tuple({i}));
  Dataset sample = d.BernoulliSample(0.2, &rng);
  EXPECT_GT(sample.size(), 1600u);
  EXPECT_LT(sample.size(), 2400u);
  EXPECT_EQ(sample.schema(), d.schema());
}

TEST(DatasetTest, BernoulliSampleExtremes) {
  Rng rng(2);
  Dataset d = SmallMixed();
  EXPECT_EQ(d.BernoulliSample(0.0, &rng).size(), 0u);
  EXPECT_EQ(d.BernoulliSample(1.0, &rng).size(), d.size());
}

TEST(DatasetTest, ProjectKeepsSelectedColumns) {
  Dataset d = SmallMixed();
  Dataset p = d.Project({1});
  EXPECT_EQ(p.schema()->num_attributes(), 1u);
  EXPECT_EQ(p.schema()->attribute(0).name, "N");
  EXPECT_EQ(p.size(), d.size());
  EXPECT_EQ(p.tuple(0), Tuple({10}));
  EXPECT_EQ(p.tuple(3), Tuple({50}));
}

TEST(DatasetTest, TopDistinctAttributesPreservesSchemaOrder) {
  SchemaPtr schema = Schema::NumericBounded({{0, 999}, {0, 999}, {0, 999}});
  Dataset d(schema);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    // A1 has 2 distinct values, A2 has ~300, A3 has 10.
    d.AddUnchecked(Tuple({rng.UniformInt(0, 1), rng.UniformInt(0, 299),
                          rng.UniformInt(0, 9)}));
  }
  EXPECT_EQ(d.TopDistinctAttributes(1), (std::vector<size_t>{1}));
  EXPECT_EQ(d.TopDistinctAttributes(2), (std::vector<size_t>{1, 2}));
  EXPECT_EQ(d.TopDistinctAttributes(3), (std::vector<size_t>{0, 1, 2}));
}

TEST(DatasetTest, MultisetEqualsIsOrderInsensitive) {
  SchemaPtr schema = Schema::Numeric(1);
  Dataset a(schema), b(schema);
  a.AddUnchecked(Tuple({1}));
  a.AddUnchecked(Tuple({2}));
  a.AddUnchecked(Tuple({2}));
  b.AddUnchecked(Tuple({2}));
  b.AddUnchecked(Tuple({2}));
  b.AddUnchecked(Tuple({1}));
  EXPECT_TRUE(Dataset::MultisetEquals(a, b));
}

TEST(DatasetTest, MultisetEqualsCountsMultiplicity) {
  SchemaPtr schema = Schema::Numeric(1);
  Dataset a(schema), b(schema);
  a.AddUnchecked(Tuple({1}));
  a.AddUnchecked(Tuple({1}));
  b.AddUnchecked(Tuple({1}));
  EXPECT_FALSE(Dataset::MultisetEquals(a, b));
  EXPECT_EQ(Dataset::MultisetDistance(a, b), 1u);
  b.AddUnchecked(Tuple({2}));
  EXPECT_EQ(Dataset::MultisetDistance(a, b), 2u);
}

TEST(DatasetTest, SaveCsvRoundTripContent) {
  std::string path = ::testing::TempDir() + "/hdc_dataset_test.csv";
  Dataset d = SmallMixed();
  ASSERT_TRUE(d.SaveCsv(path).ok());
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  EXPECT_EQ(header, "C,N");
  std::getline(in, row);
  EXPECT_EQ(row, "1,10");
  int rows = 1;
  while (std::getline(in, row)) ++rows;
  EXPECT_EQ(rows, 4);
}

}  // namespace
}  // namespace hdc
