// Copyright (c) hdc authors. Apache-2.0 license.
//
// Connection-scale tests for the epoll-driven ServiceEndpoint: hundreds of
// concurrent sessions multiplexed onto one IO thread and a small dispatch
// pool, the Prometheus /metrics scrape riding the same port, and the
// Listener shutdown/accept race surfacing the typed closed status.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "net/remote_server.h"
#include "net/service_endpoint.h"
#include "net/socket.h"
#include "server/crawl_service.h"
#include "server/local_server.h"

namespace hdc {
namespace {

std::shared_ptr<const Dataset> ScaleData() {
  SyntheticCategoricalOptions gen;
  gen.domain_sizes = {6, 5};
  gen.n = 300;
  gen.seed = 81;
  return std::make_shared<const Dataset>(GenerateSyntheticCategorical(gen));
}

// --- ≥256 concurrent sessions on one endpoint -------------------------------

TEST(EndpointScaleTest, SustainsHundredsOfConcurrentSessions) {
  constexpr size_t kSessions = 256;
  auto data = ScaleData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());

  CrawlServiceOptions service_options;
  service_options.max_parallelism = 4;
  CrawlService service(data, k, nullptr, service_options);
  net::ServiceEndpointOptions endpoint_options;
  endpoint_options.dispatch_threads = 4;
  net::ServiceEndpoint endpoint(&service, endpoint_options);
  ASSERT_TRUE(endpoint.Start().ok());

  // Ground truth for the probes every session will issue.
  LocalServer reference(data, k);
  const Query full = Query::FullSpace(reference.schema());
  Response want_full, want_slice;
  ASSERT_TRUE(reference.Issue(full, &want_full).ok());
  ASSERT_TRUE(
      reference.Issue(full.WithCategoricalEquals(0, 3), &want_slice).ok());

  // All sessions connect and stay open together: the endpoint must hold
  // kSessions live connections at once, not serve them one at a time.
  std::vector<std::unique_ptr<net::RemoteServer>> clients;
  clients.reserve(kSessions);
  for (size_t i = 0; i < kSessions; ++i) {
    net::RemoteServerOptions options;
    options.label = "scale-" + std::to_string(i);
    std::unique_ptr<net::RemoteServer> client;
    ASSERT_TRUE(net::RemoteServer::Connect("127.0.0.1", endpoint.port(),
                                           options, &client)
                    .ok())
        << "connect #" << i;
    clients.push_back(std::move(client));
  }
  EXPECT_GE(endpoint.connections_accepted(), kSessions);
  EXPECT_GE(service.MetricsSnapshot().sessions_active, kSessions);

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kSessions);
  for (size_t i = 0; i < kSessions; ++i) {
    workers.emplace_back([&, i] {
      net::RemoteServer* client = clients[i].get();
      for (int round = 0; round < 3; ++round) {
        Response got;
        const bool slice = (static_cast<int>(i) + round) % 2 == 0;
        const Response& want = slice ? want_slice : want_full;
        Query q = slice ? full.WithCategoricalEquals(0, 3) : full;
        if (!client->Issue(q, &got).ok()) {
          failures.fetch_add(1);
          return;
        }
        bool same =
            got.overflow == want.overflow && got.size() == want.size();
        for (size_t j = 0; same && j < want.size(); ++j) {
          same = got.tuples[j].hidden_id == want.tuples[j].hidden_id &&
                 got.tuples[j].tuple == want.tuples[j].tuple;
        }
        if (!same) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  const CrawlServiceMetrics metrics = service.MetricsSnapshot();
  EXPECT_GE(metrics.sessions_created, kSessions);
  EXPECT_GE(metrics.queries_served, kSessions * 3);

  // Hang everything up; the endpoint retires every session.
  clients.clear();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.MetricsSnapshot().sessions_active > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(service.MetricsSnapshot().sessions_active, 0u);
  endpoint.Stop();
}

// --- Prometheus scrape on the same port -------------------------------------

std::string HttpGet(uint16_t port, const std::string& path) {
  net::Socket raw;
  if (!net::Socket::Connect("127.0.0.1", port, &raw).ok()) return "";
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: hdc\r\n\r\n";
  if (!raw.SendAll(request.data(), request.size()).ok()) return "";
  std::string reply;
  char byte;
  while (raw.RecvAll(&byte, 1).ok()) reply.push_back(byte);
  return reply;
}

TEST(EndpointScaleTest, MetricsEndpointServesPrometheusText) {
  auto data = ScaleData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlService service(data, k);
  net::ServiceEndpoint endpoint(&service);
  ASSERT_TRUE(endpoint.Start().ok());

  // Give the scrape something to report: one live session, a few queries.
  std::unique_ptr<net::RemoteServer> client;
  net::RemoteServerOptions options;
  options.label = "scrape-me";
  ASSERT_TRUE(net::RemoteServer::Connect("127.0.0.1", endpoint.port(),
                                         options, &client)
                  .ok());
  Response response;
  const Query full = Query::FullSpace(client->schema());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->Issue(full, &response).ok());
  }

  const std::string reply = HttpGet(endpoint.port(), "/metrics");
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply.substr(0, 12), "HTTP/1.0 200");
  EXPECT_NE(reply.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  // The service-wide gauges and counters, in exposition format.
  EXPECT_NE(reply.find("# TYPE hdc_sessions_active gauge"),
            std::string::npos);
  EXPECT_NE(reply.find("hdc_sessions_created_total 1"), std::string::npos);
  EXPECT_NE(reply.find("hdc_queries_served_total 4"), std::string::npos);
  EXPECT_NE(reply.find("hdc_pool_threads"), std::string::npos);
  // Per-session series carry the session label.
  EXPECT_NE(reply.find("hdc_session_queries_served_total{session_id=\"0\","
                       "label=\"scrape-me\"} 4"),
            std::string::npos);

  // Unknown paths stay 404 and the frame protocol is unaffected.
  const std::string missing = HttpGet(endpoint.port(), "/nope");
  EXPECT_EQ(missing.substr(0, 12), "HTTP/1.0 404");
  ASSERT_TRUE(client->Issue(full, &response).ok());

  client.reset();
  endpoint.Stop();
}

TEST(EndpointScaleTest, CacheCountersAppearInScrape) {
  auto data = ScaleData();
  const uint64_t k = std::max<uint64_t>(8, data->MaxPointMultiplicity());
  CrawlServiceOptions options;
  options.enable_answer_cache = true;
  CrawlService service(data, k, nullptr, options);
  net::ServiceEndpoint endpoint(&service);
  ASSERT_TRUE(endpoint.Start().ok());

  std::unique_ptr<net::RemoteServer> client;
  net::RemoteServerOptions remote;
  remote.label = "cache-scrape";
  ASSERT_TRUE(net::RemoteServer::Connect("127.0.0.1", endpoint.port(),
                                         remote, &client)
                  .ok());
  // The same query four times: one miss fills the shared cache, three hits
  // are served from it.
  Response response;
  const Query full = Query::FullSpace(client->schema());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->Issue(full, &response).ok());
  }

  const std::string reply = HttpGet(endpoint.port(), "/metrics");
  ASSERT_FALSE(reply.empty());
  EXPECT_NE(reply.find("# TYPE hdc_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(reply.find("hdc_cache_hits_total 3"), std::string::npos);
  EXPECT_NE(reply.find("hdc_cache_misses_total 1"), std::string::npos);
  EXPECT_NE(reply.find("hdc_cache_revalidations_total 0"),
            std::string::npos);
  EXPECT_NE(reply.find("# TYPE hdc_cache_entries gauge"),
            std::string::npos);
  EXPECT_NE(reply.find("hdc_cache_entries 1"), std::string::npos);
  // Billing is cache-invisible: all four queries are served and billed.
  EXPECT_NE(reply.find("hdc_queries_served_total 4"), std::string::npos);

  client.reset();
  endpoint.Stop();
}

// --- satellite: the Shutdown()/Accept() race is a typed status --------------

TEST(ListenerShutdownTest, AcceptRacingShutdownReturnsTypedStatus) {
  net::Listener listener;
  ASSERT_TRUE(net::Listener::Listen("127.0.0.1", 0, &listener).ok());

  Status from_accept = Status::OK();
  std::thread blocked([&] {
    net::Socket conn;
    from_accept = listener.Accept(&conn);
  });
  // Let the thread park inside ::accept() before pulling the rug.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.Shutdown();
  blocked.join();

  EXPECT_TRUE(from_accept.IsUnavailable()) << from_accept.ToString();
  EXPECT_EQ(from_accept.message(), net::kListenerShutDownMessage)
      << "the race must surface the typed closed status, not raw errno";

  // Every accept after shutdown reports the same typed status.
  net::Socket conn;
  Status again = listener.Accept(&conn);
  EXPECT_TRUE(again.IsUnavailable());
  EXPECT_EQ(again.message(), net::kListenerShutDownMessage);

  bool accepted = true;
  Status try_again = listener.TryAccept(&conn, &accepted);
  EXPECT_TRUE(try_again.IsUnavailable());
  EXPECT_EQ(try_again.message(), net::kListenerShutDownMessage);
}

TEST(ListenerShutdownTest, ShutdownRaceNeverLeaksAJustAcceptedPeer) {
  // Tight loop alternative of the race above: a client connects at the
  // same moment Shutdown() lands. Whatever the kernel does — hands the
  // connection out or fails the accept — the caller sees either a clean
  // accept or the typed closed status, never an errno-dependent surprise.
  for (int round = 0; round < 20; ++round) {
    net::Listener listener;
    ASSERT_TRUE(net::Listener::Listen("127.0.0.1", 0, &listener).ok());
    const uint16_t port = listener.port();

    std::thread dialer([port] {
      net::Socket conn;
      (void)net::Socket::Connect("127.0.0.1", port, &conn);
    });
    std::thread closer([&listener] { listener.Shutdown(); });

    net::Socket conn;
    Status s = listener.Accept(&conn);
    if (!s.ok()) {
      EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
      EXPECT_EQ(s.message(), net::kListenerShutDownMessage);
    }
    dialer.join();
    closer.join();
  }
}

}  // namespace
}  // namespace hdc
