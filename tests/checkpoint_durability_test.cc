// Copyright (c) hdc authors. Apache-2.0 license.
//
// Crash durability of checkpoint files. Two regressions pinned here:
//
//  1. SaveCheckpointFile used to rewrite the target in place, so a crash
//     mid-write destroyed the previous checkpoint. The fix writes a temp
//     file, fsyncs, and renames; whatever prefix of the new bytes a crash
//     leaves behind, the prior checkpoint must still load.
//
//  2. LoadCheckpoint on a truncated file must fail with a typed error that
//     names the offending line — and must never hand back a
//     partially-populated CrawlState.
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "server/local_server.h"
#include "util/macros.h"

namespace hdc {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// A mid-crawl state with a non-trivial frontier, plus its serialized form.
struct Fixture {
  std::shared_ptr<Dataset> data;
  std::shared_ptr<CrawlState> state;
  std::string serialized;
};

Fixture MakeFixture(uint64_t seed, uint64_t budget) {
  Fixture f;
  SyntheticMixedOptions gen;
  gen.domain_sizes = {4, 5};
  gen.num_numeric = 1;
  gen.n = 500;
  gen.value_range = 120;
  gen.seed = seed;
  f.data = std::make_shared<Dataset>(GenerateSyntheticMixed(gen));
  LocalServer server(f.data,
                     std::max<uint64_t>(8, f.data->MaxPointMultiplicity()));
  HybridCrawler crawler;
  CrawlOptions options;
  options.max_queries = budget;
  CrawlResult partial = crawler.Crawl(&server, options);
  HDC_CHECK(partial.status.IsResourceExhausted());
  f.state = partial.resume_state;
  std::ostringstream out;
  HDC_CHECK(SaveCheckpoint(*f.state, *f.data->schema(), &out).ok());
  f.serialized = out.str();
  return f;
}

// Satellite 1: the torn-write regression. Simulate a crash at *every byte
// offset* of a subsequent save — the temp file holds an arbitrary prefix of
// the new checkpoint, the rename never happened — and require the prior
// checkpoint to survive intact.
TEST(CheckpointDurabilityTest, PriorCheckpointSurvivesTornOverwrite) {
  Fixture a = MakeFixture(51, 9);
  Fixture b = MakeFixture(51, 21);  // same crawl, further along
  ASSERT_NE(a.serialized, b.serialized);

  const std::string path = ::testing::TempDir() + "/hdc_torn_ckpt.txt";
  ASSERT_TRUE(SaveCheckpointFile(*a.state, *a.data->schema(), path).ok());
  const std::string saved_a = ReadWholeFile(path);
  ASSERT_EQ(saved_a, a.serialized);

  for (size_t offset = 0; offset <= b.serialized.size(); ++offset) {
    // The crash leaves the partial new bytes only in the temp file.
    WriteRaw(path + ".tmp", b.serialized.substr(0, offset));
    std::shared_ptr<CrawlState> restored;
    ASSERT_TRUE(LoadCheckpointFile(path, a.data->schema(), &restored).ok())
        << "prior checkpoint lost after torn write at offset " << offset;
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->queries_issued, a.state->queries_issued);
  }
  std::remove((path + ".tmp").c_str());

  // A save that *completes* atomically replaces the file with the new
  // checkpoint.
  ASSERT_TRUE(SaveCheckpointFile(*b.state, *b.data->schema(), path).ok());
  EXPECT_EQ(ReadWholeFile(path), b.serialized);
  std::shared_ptr<CrawlState> restored;
  ASSERT_TRUE(LoadCheckpointFile(path, b.data->schema(), &restored).ok());
  EXPECT_EQ(restored->queries_issued, b.state->queries_issued);
}

// Satellite 3: truncation anywhere inside the file is a typed failure and
// never a partially-populated state. (Only cutting the final newline — a
// complete final line — may still load.)
TEST(CheckpointDurabilityTest, TruncatedCheckpointNeverLoadsPartially) {
  Fixture f = MakeFixture(52, 15);
  const std::string& text = f.serialized;
  ASSERT_GT(text.size(), 100u);

  for (size_t offset = 0; offset < text.size(); ++offset) {
    std::istringstream in(text.substr(0, offset));
    std::shared_ptr<CrawlState> restored;
    Status s = LoadCheckpoint(&in, f.data->schema(), &restored);
    if (s.ok()) {
      // The only survivable cut: the final "frontier-end" line kept whole,
      // just missing its newline.
      EXPECT_EQ(offset, text.size() - 1) << "offset " << offset;
      continue;
    }
    EXPECT_EQ(restored, nullptr)
        << "partially-populated state escaped at offset " << offset;
    // Typed failure: truncation inside the header's version token reads as
    // an unsupported version (NotSupported); anywhere else it is an
    // InvalidArgument naming the line.
    EXPECT_TRUE(s.IsInvalidArgument() ||
                s.code() == Status::Code::kNotSupported)
        << s.ToString();
  }
}

TEST(CheckpointDurabilityTest, TruncationErrorsNameTheLine) {
  Fixture f = MakeFixture(53, 12);

  {  // Empty file: the error points at the missing header line.
    std::istringstream in("");
    std::shared_ptr<CrawlState> restored;
    Status s = LoadCheckpoint(&in, f.data->schema(), &restored);
    ASSERT_TRUE(s.IsInvalidArgument());
    EXPECT_NE(s.message().find("line 1"), std::string::npos) << s.ToString();
    EXPECT_EQ(restored, nullptr);
  }

  {  // Cut mid-tuple: inside the extracted section, on a tuple line.
    const std::string marker = "extracted ";
    const size_t section = f.serialized.find(marker);
    ASSERT_NE(section, std::string::npos);
    const size_t first_tuple = f.serialized.find('\n', section) + 1;
    const size_t cut = first_tuple + 2;  // a few bytes into the tuple line
    ASSERT_LT(cut, f.serialized.size());
    std::istringstream in(f.serialized.substr(0, cut));
    std::shared_ptr<CrawlState> restored;
    Status s = LoadCheckpoint(&in, f.data->schema(), &restored);
    ASSERT_TRUE(s.IsInvalidArgument());
    EXPECT_NE(s.message().find("line "), std::string::npos) << s.ToString();
    EXPECT_EQ(restored, nullptr);
  }

  {  // Frontier section cut off before frontier-end.
    const size_t end = f.serialized.rfind("frontier-end");
    ASSERT_NE(end, std::string::npos);
    std::istringstream in(f.serialized.substr(0, end));
    std::shared_ptr<CrawlState> restored;
    Status s = LoadCheckpoint(&in, f.data->schema(), &restored);
    ASSERT_TRUE(s.IsInvalidArgument());
    EXPECT_NE(s.message().find("line "), std::string::npos) << s.ToString();
    EXPECT_EQ(restored, nullptr);
  }
}

// The file loader distinguishes "no checkpoint yet" from a corrupt one.
TEST(CheckpointDurabilityTest, MissingFileIsNotFound) {
  Fixture f = MakeFixture(54, 9);
  std::shared_ptr<CrawlState> restored;
  Status s = LoadCheckpointFile(::testing::TempDir() + "/hdc_no_such_ckpt",
                                f.data->schema(), &restored);
  EXPECT_EQ(s.code(), Status::Code::kNotFound) << s.ToString();
  EXPECT_EQ(restored, nullptr);
}

}  // namespace
}  // namespace hdc
