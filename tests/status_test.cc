// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/status.h"

#include <gtest/gtest.h>

namespace hdc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, ResourceExhaustedPredicate) {
  EXPECT_TRUE(Status::ResourceExhausted("budget").IsResourceExhausted());
  EXPECT_FALSE(Status::OK().IsResourceExhausted());
  EXPECT_FALSE(Status::Internal("x").IsResourceExhausted());
}

TEST(StatusTest, UnsolvablePredicate) {
  Status s = Status::Unsolvable("point has k+1 duplicates");
  EXPECT_TRUE(s.IsUnsolvable());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "Unsolvable: point has k+1 duplicates");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(Status::Code::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(Status::Code::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(Status::Code::kNotSupported), "NotSupported");
  EXPECT_STREQ(StatusCodeName(Status::Code::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(Status::Code::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(Status::Code::kUnsolvable), "Unsolvable");
  EXPECT_STREQ(StatusCodeName(Status::Code::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(Status::Code::kInternal), "Internal");
}

}  // namespace
}  // namespace hdc
