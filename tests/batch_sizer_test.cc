// Copyright (c) hdc authors. Apache-2.0 license.
//
// Latency-aware adaptive batch sizing (core/batch_sizer.h): the
// grow/shrink/back-off rules as exact unit tests, and the CrawlContext
// integration — auto rounds against a latency-feedback server follow the
// sizer, auto rounds against an in-process server keep the deterministic
// PR 3 rule. All timing runs on a FakeClock: every decision is asserted
// exactly, nothing sleeps.
#include "core/batch_sizer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "core/crawl_context.h"
#include "core/rank_shrink.h"
#include "server/decorators.h"
#include "server/local_server.h"
#include "util/clock.h"

namespace hdc {
namespace {

using std::chrono::duration_cast;
using std::chrono::duration;
using std::chrono::nanoseconds;

AdaptiveBatchOptions Options(double target = 0.2) {
  AdaptiveBatchOptions options;
  options.target_round_seconds = target;
  options.congestion_fraction = 0.5;
  options.max_round = 64;
  return options;
}

TEST(AdaptiveBatchSizerTest, StartsAtDeclaredParallelism) {
  EXPECT_EQ(AdaptiveBatchSizer(Options(), 4).limit(), 4u);
  EXPECT_EQ(AdaptiveBatchSizer(Options(), 0).limit(), 1u)
      << "parallelism is clamped to >= 1";
  AdaptiveBatchOptions small = Options();
  small.max_round = 2;
  EXPECT_EQ(AdaptiveBatchSizer(small, 8).limit(), 2u)
      << "the ceiling applies from the start";
}

TEST(AdaptiveBatchSizerTest, FastFullRoundsDoubleUpToTheCeiling) {
  AdaptiveBatchSizer sizer(Options(/*target=*/0.2), 4);
  // Full rounds well under target/2 keep doubling: 4 -> 8 -> 16 -> 32 -> 64.
  for (size_t expected : {8u, 16u, 32u, 64u}) {
    sizer.RecordRound(sizer.limit(), /*rtt=*/0.05, /*wait_total=*/0);
    EXPECT_EQ(sizer.limit(), expected);
  }
  // At the ceiling, further fast rounds change nothing.
  sizer.RecordRound(64, 0.05, 0);
  EXPECT_EQ(sizer.limit(), 64u);
  EXPECT_EQ(sizer.grow_events(), 4u);
}

TEST(AdaptiveBatchSizerTest, PartialRoundsNeverGrowTheLimit) {
  AdaptiveBatchSizer sizer(Options(0.2), 4);
  sizer.RecordRound(/*round_size=*/2, /*rtt=*/0.01, 0);
  EXPECT_EQ(sizer.limit(), 4u)
      << "a half-empty round says nothing about a bigger one";
}

TEST(AdaptiveBatchSizerTest, SlowRoundsHalve) {
  AdaptiveBatchSizer sizer(Options(0.2), 16);
  sizer.RecordRound(16, /*rtt=*/0.5, 0);  // > 2 * target
  EXPECT_EQ(sizer.limit(), 8u);
  sizer.RecordRound(8, 0.5, 0);
  EXPECT_EQ(sizer.limit(), 4u);
  EXPECT_EQ(sizer.shrink_events(), 2u);
  // Rounds inside the comfort band leave the limit alone.
  sizer.RecordRound(4, 0.2, 0);
  EXPECT_EQ(sizer.limit(), 4u);
}

TEST(AdaptiveBatchSizerTest, LimitNeverDropsBelowOne) {
  AdaptiveBatchSizer sizer(Options(0.2), 1);
  sizer.RecordRound(1, 10.0, 0);
  EXPECT_EQ(sizer.limit(), 1u);
}

TEST(AdaptiveBatchSizerTest, CongestionBacksOffBeforeLatencyGrows) {
  AdaptiveBatchSizer sizer(Options(0.2), 8);
  // Fast round — would normally double — but most of its round-trip was
  // spent queued behind other tenants: back off instead.
  sizer.RecordRound(8, /*rtt=*/0.05, /*wait_total=*/0.04);
  EXPECT_EQ(sizer.limit(), 4u);
  EXPECT_EQ(sizer.congestion_backoffs(), 1u);
  EXPECT_EQ(sizer.grow_events(), 0u);

  // The wait signal is cumulative: an unchanged total means the *next*
  // round waited 0, so a fast full round grows again.
  sizer.RecordRound(4, 0.05, 0.04);
  EXPECT_EQ(sizer.limit(), 8u);
  EXPECT_EQ(sizer.grow_events(), 1u);
}

TEST(AdaptiveBatchSizerTest, QueueWaitResetOnReconnectIsNotMuted) {
  AdaptiveBatchSizer sizer(Options(0.2), 4);
  // A long session accumulates 0.48s of cumulative queue wait across many
  // rounds whose individual deltas stayed uncongested.
  for (int round = 1; round <= 6; ++round) {
    sizer.RecordRound(4, 0.19, 0.08 * round);
  }
  ASSERT_EQ(sizer.congestion_backoffs(), 0u);
  ASSERT_EQ(sizer.limit(), 4u);
  // Reconnect: the fresh session's cumulative reading restarts below the
  // old total. Its 0.04s IS this round's wait — on a 0.05s round-trip
  // that is congestion and must back off, not be clamped to zero.
  sizer.RecordRound(4, 0.05, 0.04);
  EXPECT_EQ(sizer.congestion_backoffs(), 1u);
  EXPECT_EQ(sizer.limit(), 2u);
}

TEST(AdaptiveBatchSizerTest, ShardedHintBacksOffOnTheStragglerShard) {
  AdaptiveBatchSizer sizer(Options(0.2), 8);
  // Four shards; only shard 2 is congested. Its per-round wait delta is
  // 0.04s on a 0.05s round-trip — congestion on its own, even though the
  // other three shards report zero and would dilute a summed-or-averaged
  // signal below the 0.5 * rtt threshold.
  ServerLoadHint hint;
  hint.latency_feedback = true;
  hint.shard_queue_wait_seconds = {0.0, 0.0, 0.04, 0.0};
  hint.queue_wait_total_seconds = 0.04;
  sizer.RecordRound(8, /*rtt_seconds=*/0.05, hint);
  EXPECT_EQ(sizer.congestion_backoffs(), 1u);
  EXPECT_EQ(sizer.limit(), 4u);

  // The straggler catches up: no new wait anywhere, a fast full round
  // grows again. The per-shard baselines must have been remembered, or
  // the unchanged cumulative 0.04 would read as fresh congestion.
  hint.shard_queue_wait_seconds = {0.0, 0.0, 0.04, 0.0};
  sizer.RecordRound(4, 0.05, hint);
  EXPECT_EQ(sizer.congestion_backoffs(), 1u);
  EXPECT_EQ(sizer.limit(), 8u);

  // One shard reconnects (its cumulative reading restarts low): the fresh
  // reading is that shard's wait since reconnect, not a zero delta.
  hint.shard_queue_wait_seconds = {0.0, 0.0, 0.03, 0.0};
  sizer.RecordRound(8, 0.05, hint);
  EXPECT_EQ(sizer.congestion_backoffs(), 2u);
  EXPECT_EQ(sizer.limit(), 4u);
}

TEST(AdaptiveBatchSizerTest, EmptyShardVectorFallsBackToTheAggregate) {
  AdaptiveBatchSizer sizer(Options(0.2), 4);
  // A hint without per-shard waits (every unsharded server) must behave
  // exactly like the scalar overload, including the reconnect rule.
  ServerLoadHint hint;
  hint.latency_feedback = true;
  hint.queue_wait_total_seconds = 0.04;
  sizer.RecordRound(4, 0.05, hint);
  EXPECT_EQ(sizer.congestion_backoffs(), 1u);
  EXPECT_EQ(sizer.limit(), 2u);
}

TEST(AdaptiveBatchSizerTest, ZeroRttRoundsNeverCountAsCongested) {
  AdaptiveBatchSizer sizer(Options(0.2), 2);
  // rtt == 0 (e.g. a FakeClock that was not advanced): the congestion
  // ratio is undefined, so the round must fall through to growth.
  sizer.RecordRound(2, 0.0, /*wait_total=*/1.0);
  EXPECT_EQ(sizer.limit(), 4u);
  EXPECT_EQ(sizer.congestion_backoffs(), 0u);
}

// --- CrawlContext integration -----------------------------------------------

/// Wraps an in-process server and fakes the transport signals: every
/// IssueBatch advances the injected FakeClock by a scripted round-trip,
/// and load_hint() reports latency feedback plus a scripted queue-wait
/// total — a remote backend without sockets.
class FakeLatencyServer : public ServerDecorator {
 public:
  FakeLatencyServer(HiddenDbServer* base, FakeClock* clock)
      : ServerDecorator(base), clock_(clock) {}

  Status IssueBatch(const std::vector<Query>& queries,
                    std::vector<Response>* responses) override {
    clock_->Advance(rtt_);
    politeness_wait_total_ += politeness_per_round_;
    return base_->IssueBatch(queries, responses);
  }

  ServerLoadHint load_hint() const override {
    ServerLoadHint hint;
    hint.latency_feedback = true;
    hint.queue_wait_total_seconds = queue_wait_total_;
    hint.politeness_wait_total_seconds = politeness_wait_total_;
    return hint;
  }

  void set_rtt(nanoseconds rtt) { rtt_ = rtt; }
  void set_queue_wait_total(double seconds) { queue_wait_total_ = seconds; }
  /// Politeness sleep simulated inside each IssueBatch (the cumulative
  /// total grows by this much per round).
  void set_politeness_per_round(double seconds) {
    politeness_per_round_ = seconds;
  }

 private:
  FakeClock* clock_;
  nanoseconds rtt_{0};
  double queue_wait_total_ = 0;
  double politeness_per_round_ = 0;
  double politeness_wait_total_ = 0;
};

class SizerContextFixture : public ::testing::Test {
 protected:
  SizerContextFixture() {
    SchemaPtr schema = Schema::NumericBounded({{0, 1000}});
    auto data = std::make_shared<Dataset>(schema);
    for (Value v = 0; v < 200; ++v) data->Add(Tuple({v * 5}));
    LocalServerOptions options;
    options.max_parallelism = 2;
    server_ = std::make_unique<LocalServer>(data, /*k=*/4, nullptr, options);
    remote_ = std::make_unique<FakeLatencyServer>(server_.get(), &clock_);
    state_ = std::make_shared<RankShrinkState>(schema);
  }

  std::vector<Query> Rounds(size_t n) {
    std::vector<Query> batch;
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(Query::FullSpace(server_->schema())
                          .WithNumericRange(0, static_cast<Value>(i) * 10,
                                            static_cast<Value>(i) * 10 + 9));
    }
    return batch;
  }

  FakeClock clock_;
  std::unique_ptr<LocalServer> server_;
  std::unique_ptr<FakeLatencyServer> remote_;
  std::shared_ptr<RankShrinkState> state_;
};

TEST_F(SizerContextFixture, AutoRoundsFollowTheSizerAgainstLatencyFeedback) {
  CrawlOptions options;
  options.batch_size = 0;  // auto
  options.clock = &clock_;
  options.adaptive_batch = Options(/*target=*/0.2);
  CrawlContext ctx(remote_.get(), state_.get(), options);
  ASSERT_NE(ctx.batch_sizer(), nullptr);

  // Seed limit = batch_parallelism = 2; a wide frontier is capped there.
  EXPECT_EQ(ctx.RoundSize(100), 2u);

  // Fast full round (50ms < target/2): the limit doubles.
  remote_->set_rtt(std::chrono::milliseconds(50));
  std::vector<Response> responses;
  ctx.IssueBatch(Rounds(2), &responses);
  EXPECT_EQ(ctx.RoundSize(100), 4u);

  // Another fast full round: 8.
  ctx.IssueBatch(Rounds(4), &responses);
  EXPECT_EQ(ctx.RoundSize(100), 8u);
  EXPECT_EQ(ctx.RoundSize(3), 3u) << "a narrow frontier is never padded";

  // A slow round (500ms > 2 * target) halves the limit.
  remote_->set_rtt(std::chrono::milliseconds(500));
  ctx.IssueBatch(Rounds(8), &responses);
  EXPECT_EQ(ctx.RoundSize(100), 4u);

  // A congested round — the server reports 40ms of its 50ms round-trip
  // was queue wait — backs off again.
  remote_->set_rtt(std::chrono::milliseconds(50));
  remote_->set_queue_wait_total(0.040);
  ctx.IssueBatch(Rounds(4), &responses);
  EXPECT_EQ(ctx.RoundSize(100), 2u);
  EXPECT_EQ(ctx.batch_sizer()->congestion_backoffs(), 1u);
}

TEST_F(SizerContextFixture, PolitenessSleepIsNotCountedAsLatency) {
  CrawlOptions options;
  options.batch_size = 0;
  options.clock = &clock_;
  options.adaptive_batch = Options(/*target=*/0.2);
  CrawlContext ctx(remote_.get(), state_.get(), options);
  ASSERT_EQ(ctx.RoundSize(100), 2u);

  // The round takes 5.05s of wall clock, but 5s of it was the politeness
  // pacer sleeping (the server's cumulative politeness total advances by
  // 5s during the call). Effective transport latency is 50ms: the limit
  // must GROW, not collapse to 1.
  remote_->set_rtt(std::chrono::milliseconds(5050));
  remote_->set_politeness_per_round(5.0);
  std::vector<Response> responses;
  ctx.IssueBatch(Rounds(2), &responses);
  EXPECT_EQ(ctx.RoundSize(100), 4u)
      << "a deliberate pacing delay must not shrink rounds";
  EXPECT_EQ(ctx.batch_sizer()->shrink_events(), 0u);
}

TEST_F(SizerContextFixture, InProcessAutoKeepsTheDeterministicRule) {
  CrawlOptions options;
  options.batch_size = 0;
  CrawlContext ctx(server_.get(), state_.get(), options);
  EXPECT_EQ(ctx.batch_sizer(), nullptr)
      << "no latency feedback => no adaptive sizing";
  EXPECT_EQ(ctx.RoundSize(100), 2u) << "frontier capped by parallelism";
  EXPECT_EQ(ctx.RoundSize(1), 1u);
}

TEST_F(SizerContextFixture, FixedBatchSizeIgnoresTheSizer) {
  CrawlOptions options;
  options.batch_size = 4;
  CrawlContext ctx(remote_.get(), state_.get(), options);
  EXPECT_EQ(ctx.batch_sizer(), nullptr);
  EXPECT_EQ(ctx.RoundSize(100), 4u);
}

}  // namespace
}  // namespace hdc
