// Copyright (c) hdc authors. Apache-2.0 license.
//
// Regression tests for the *reproduction claims* themselves: the
// qualitative shapes of Figures 10-13 (who wins, how cost scales, where
// feasibility breaks) asserted against the full-size generated datasets.
// If a generator or algorithm change silently breaks a reproduced trend,
// these tests catch it before EXPERIMENTS.md goes stale.
#include <gtest/gtest.h>

#include <memory>

#include "core/crawlers.h"
#include "gen/adult_gen.h"
#include "gen/nsf_gen.h"
#include "gen/yahoo_gen.h"
#include "server/local_server.h"

namespace hdc {
namespace {

uint64_t Cost(Crawler* crawler, std::shared_ptr<const Dataset> data,
              uint64_t k) {
  LocalServer server(std::move(data), k);
  CrawlResult result = crawler->Crawl(&server);
  EXPECT_TRUE(result.status.ok())
      << crawler->name() << ": " << result.status.ToString();
  return result.queries_issued;
}

class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    adult_numeric_ =
        new std::shared_ptr<const Dataset>(
            std::make_shared<const Dataset>(GenerateAdultNumeric()));
    nsf_ = new std::shared_ptr<const Dataset>(
        std::make_shared<const Dataset>(GenerateNsf()));
    yahoo_ = new std::shared_ptr<const Dataset>(
        std::make_shared<const Dataset>(GenerateYahoo()));
  }
  static void TearDownTestSuite() {
    delete adult_numeric_;
    delete nsf_;
    delete yahoo_;
  }

  static std::shared_ptr<const Dataset>* adult_numeric_;
  static std::shared_ptr<const Dataset>* nsf_;
  static std::shared_ptr<const Dataset>* yahoo_;
};

std::shared_ptr<const Dataset>* PaperShapes::adult_numeric_ = nullptr;
std::shared_ptr<const Dataset>* PaperShapes::nsf_ = nullptr;
std::shared_ptr<const Dataset>* PaperShapes::yahoo_ = nullptr;

// Figure 10a: rank-shrink <= binary-shrink at every k, and rank-shrink's
// cost roughly halves as k doubles (inverse linearity).
TEST_F(PaperShapes, Fig10aRankShrinkWinsAndScalesInverselyInK) {
  uint64_t previous = 0;
  for (uint64_t k : {64, 256, 1024}) {
    BinaryShrink binary;
    RankShrink rank;
    const uint64_t bcost = Cost(&binary, *adult_numeric_, k);
    const uint64_t rcost = Cost(&rank, *adult_numeric_, k);
    EXPECT_LE(rcost, bcost) << "k=" << k;
    if (previous > 0) {
      // 4x the k must cut cost by at least 2x.
      EXPECT_LT(2 * rcost, previous) << "k=" << k;
    }
    previous = rcost;
  }
}

// Figure 10b: rank-shrink is nearly flat in d (within 1.5x between d=3 and
// d=6) because Adult-numeric rarely triggers 3-way splits.
TEST_F(PaperShapes, Fig10bRankShrinkFlatInD) {
  const uint64_t k = 256;
  RankShrink rank;
  auto d3 = std::make_shared<const Dataset>(
      (*adult_numeric_)->Project((*adult_numeric_)->TopDistinctAttributes(3)));
  const uint64_t cost3 = Cost(&rank, d3, k);
  const uint64_t cost6 = Cost(&rank, *adult_numeric_, k);
  EXPECT_LT(cost6, cost3 + cost3 / 2) << "cost must not grow ~linearly in d";
}

// Figure 11a: lazy-slice-cover beats both DFS and eager slice-cover at
// every k; eager stays within a narrow band around Sigma U_i.
TEST_F(PaperShapes, Fig11aLazyWinsEverywhereEagerFlat) {
  const uint64_t sigma_u = (*nsf_)->schema()->TotalCategoricalDomain();
  for (uint64_t k : {128, 256, 1024}) {
    DfsCrawler dfs;
    SliceCoverCrawler eager(false), lazy(true);
    const uint64_t dcost = Cost(&dfs, *nsf_, k);
    const uint64_t ecost = Cost(&eager, *nsf_, k);
    const uint64_t lcost = Cost(&lazy, *nsf_, k);
    EXPECT_LT(lcost, dcost) << "k=" << k;
    EXPECT_LT(lcost, ecost) << "k=" << k;
    EXPECT_GE(ecost, sigma_u) << "eager pays all slices";
    EXPECT_LE(ecost, 2 * sigma_u) << "eager stays near Sigma U_i";
  }
}

// Figure 12: hybrid's cost falls with k on both mixed datasets, and Yahoo
// is infeasible at k = 64 while Adult is not.
TEST_F(PaperShapes, Fig12HybridScalesAndYahooGapAtK64) {
  EXPECT_GT((*yahoo_)->MaxPointMultiplicity(), 64u);

  HybridCrawler hybrid;
  uint64_t previous = UINT64_MAX;
  for (uint64_t k : {128, 256, 512, 1024}) {
    const uint64_t cost = Cost(&hybrid, *yahoo_, k);
    EXPECT_LT(cost, previous) << "k=" << k;
    previous = cost;
  }
  // The abstract's headline: a few hundred queries at k ~ 1000.
  EXPECT_LT(previous, 1000u);

  LocalServer server_at_64(*yahoo_, 64);
  HybridCrawler again;
  CrawlResult blocked = again.Crawl(&server_at_64);
  EXPECT_TRUE(blocked.status.IsUnsolvable());
}

// Figure 13: progressiveness — at half the queries, at least a third of
// Yahoo's rows have been retrieved.
TEST_F(PaperShapes, Fig13ProgressivenessNearLinear) {
  LocalServer server(*yahoo_, 256);
  HybridCrawler hybrid;
  CrawlOptions options;
  options.record_trace = true;
  CrawlResult result = hybrid.Crawl(&server, options);
  ASSERT_TRUE(result.status.ok());
  ASSERT_FALSE(result.trace.empty());
  const TraceEntry& mid = result.trace[result.trace.size() / 2];
  EXPECT_GE(3 * mid.rows_seen, (*yahoo_)->size());
}

}  // namespace
}  // namespace hdc
