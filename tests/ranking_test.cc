// Copyright (c) hdc authors. Apache-2.0 license.
#include "server/ranking.h"

#include <gtest/gtest.h>

#include <memory>

#include "server/local_server.h"

namespace hdc {
namespace {

std::shared_ptr<Dataset> PriceData() {
  SchemaPtr schema = Schema::NumericBounded({{0, 1000}});
  auto d = std::make_shared<Dataset>(schema);
  for (Value price : {500, 100, 900, 300, 700}) d->Add(Tuple({price}));
  return d;
}

TEST(RankingTest, RandomPriorityIsDeterministicPerSeed) {
  auto data = PriceData();
  RandomPriorityPolicy p1(42), p2(42), p3(43);
  EXPECT_EQ(p1.AssignPriorities(*data), p2.AssignPriorities(*data));
  EXPECT_NE(p1.AssignPriorities(*data), p3.AssignPriorities(*data));
}

TEST(RankingTest, IdOrderAscendingFavorsOldRows) {
  auto data = PriceData();
  auto pri = IdOrderPolicy(/*ascending=*/true).AssignPriorities(*data);
  EXPECT_GT(pri[0], pri[1]);
  EXPECT_GT(pri[3], pri[4]);
}

TEST(RankingTest, IdOrderDescendingFavorsNewRows) {
  auto data = PriceData();
  auto pri = IdOrderPolicy(/*ascending=*/false).AssignPriorities(*data);
  EXPECT_LT(pri[0], pri[1]);
}

TEST(RankingTest, ByAttributeAscendingReturnsCheapestFirst) {
  auto data = PriceData();
  LocalServer server(data, /*k=*/2, MakeByAttributePolicy(0, true));
  Response r;
  ASSERT_TRUE(server.Issue(Query::FullSpace(server.schema()), &r).ok());
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuples[0].tuple[0], 100);
  EXPECT_EQ(r.tuples[1].tuple[0], 300);
}

TEST(RankingTest, ByAttributeDescendingReturnsPriciestFirst) {
  auto data = PriceData();
  LocalServer server(data, /*k=*/2, MakeByAttributePolicy(0, false));
  Response r;
  ASSERT_TRUE(server.Issue(Query::FullSpace(server.schema()), &r).ok());
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuples[0].tuple[0], 900);
  EXPECT_EQ(r.tuples[1].tuple[0], 700);
}

TEST(RankingTest, ByAttributeHandlesNegativeValues) {
  SchemaPtr schema = Schema::NumericBounded({{-100, 100}});
  auto d = std::make_shared<Dataset>(schema);
  for (Value v : {-50, 0, 50, -100, 100}) d->Add(Tuple({v}));
  LocalServer server(d, /*k=*/2, MakeByAttributePolicy(0, true));
  Response r;
  ASSERT_TRUE(server.Issue(Query::FullSpace(schema), &r).ok());
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuples[0].tuple[0], -100);
  EXPECT_EQ(r.tuples[1].tuple[0], -50);
}

TEST(RankingTest, PolicyNames) {
  EXPECT_EQ(RandomPriorityPolicy(1).name(), "random-priority");
  EXPECT_EQ(IdOrderPolicy(true).name(), "oldest-first");
  EXPECT_EQ(IdOrderPolicy(false).name(), "newest-first");
  EXPECT_EQ(ByAttributePolicy(2, true).name(), "by-attr-2-asc");
}

}  // namespace
}  // namespace hdc
