// Copyright (c) hdc authors. Apache-2.0 license.
//
// Batched crawling semantics. The contract under test: batch_size == 1
// reproduces the strictly sequential server conversation byte for byte
// (QueryLogServer diff), and any batch_size yields the identical extraction
// and the identical query count — batching may only reorder the
// conversation, never grow or shrink it.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/crawlers.h"
#include "gen/synthetic.h"
#include "paper_categorical_example.h"
#include "server/decorators.h"
#include "server/local_server.h"

namespace hdc {
namespace {

struct BatchCase {
  std::string label;
  std::function<std::unique_ptr<Crawler>()> make_crawler;
  std::function<Dataset()> make_data;
  uint64_t k;
};

std::vector<BatchCase> MakeCases() {
  std::vector<BatchCase> cases;
  cases.push_back(
      {"rank_shrink", [] { return std::make_unique<RankShrink>(); },
       [] {
         SyntheticNumericOptions gen;
         gen.d = 2;
         gen.n = 800;
         gen.value_range = 400;
         gen.seed = 21;
         return GenerateSyntheticNumeric(gen);
       },
       8});
  cases.push_back(
      {"binary_shrink", [] { return std::make_unique<BinaryShrink>(); },
       [] {
         SyntheticNumericOptions gen;
         gen.d = 2;
         gen.n = 400;
         gen.value_range = 128;
         gen.seed = 22;
         return GenerateSyntheticNumeric(gen);
       },
       8});
  cases.push_back(
      {"dfs", [] { return std::make_unique<DfsCrawler>(); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 6, 4};
         gen.n = 600;
         gen.seed = 23;
         return GenerateSyntheticCategorical(gen);
       },
       8});
  cases.push_back(
      {"slice_cover",
       [] { return std::make_unique<SliceCoverCrawler>(false); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 6, 4};
         gen.n = 600;
         gen.seed = 24;
         return GenerateSyntheticCategorical(gen);
       },
       8});
  cases.push_back(
      {"lazy_slice_cover",
       [] { return std::make_unique<SliceCoverCrawler>(true); },
       [] {
         SyntheticCategoricalOptions gen;
         gen.domain_sizes = {5, 6, 4};
         gen.n = 600;
         gen.seed = 25;
         return GenerateSyntheticCategorical(gen);
       },
       8});
  cases.push_back(
      {"hybrid", [] { return std::make_unique<HybridCrawler>(); },
       [] {
         SyntheticMixedOptions gen;
         gen.domain_sizes = {4, 5};
         gen.num_numeric = 1;
         gen.n = 700;
         gen.value_range = 100;
         gen.seed = 26;
         return GenerateSyntheticMixed(gen);
       },
       8});
  return cases;
}

/// Full crawl of `test_case` at `batch_size`; returns {result, query log}.
std::pair<CrawlResult, std::string> LoggedCrawl(const BatchCase& test_case,
                                                const Dataset& data,
                                                uint64_t k,
                                                uint32_t batch_size,
                                                unsigned max_parallelism = 1) {
  auto shared = std::make_shared<Dataset>(data);
  LocalServerOptions server_options;
  server_options.max_parallelism = max_parallelism;
  LocalServer base(shared, k, nullptr, server_options);
  std::ostringstream log;
  QueryLogServer logged(&base, &log);
  auto crawler = test_case.make_crawler();
  CrawlOptions options;
  options.batch_size = batch_size;
  CrawlResult result = crawler->Crawl(&logged, options);
  return {std::move(result), log.str()};
}

/// Log lines with the leading sequence index stripped — the order-free view
/// of the conversation.
std::vector<std::string> IndexFreeLines(const std::string& log) {
  std::vector<std::string> lines;
  std::istringstream in(log);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line.substr(line.find('\t') + 1));
  }
  return lines;
}

class BatchCrawlTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchCrawlTest, BatchSizeOneIsTheSequentialConversation) {
  const BatchCase test_case = MakeCases()[GetParam()];
  const Dataset data = test_case.make_data();
  const uint64_t k = std::max(test_case.k, data.MaxPointMultiplicity());

  // Default options (batch_size defaults to 1) vs explicit batch_size = 1:
  // the QueryLogServer transcript must be byte-identical — batching is
  // invisible until it is asked for.
  auto [default_result, default_log] = LoggedCrawl(test_case, data, k, 1);
  ASSERT_TRUE(default_result.status.ok())
      << test_case.label << ": " << default_result.status.ToString();

  auto shared = std::make_shared<Dataset>(data);
  LocalServer base(shared, k);
  std::ostringstream log;
  QueryLogServer logged(&base, &log);
  auto crawler = test_case.make_crawler();
  CrawlResult result = crawler->Crawl(&logged);  // default CrawlOptions
  ASSERT_TRUE(result.status.ok());

  EXPECT_EQ(default_log, log.str())
      << test_case.label << ": batch_size = 1 must not change the exact "
      << "query sequence";
  EXPECT_EQ(default_result.queries_issued, result.queries_issued);
}

TEST_P(BatchCrawlTest, AnyBatchSizeYieldsIdenticalExtractionAndCost) {
  const BatchCase test_case = MakeCases()[GetParam()];
  const Dataset data = test_case.make_data();
  const uint64_t k = std::max(test_case.k, data.MaxPointMultiplicity());

  auto [reference, reference_log] = LoggedCrawl(test_case, data, k, 1);
  ASSERT_TRUE(reference.status.ok())
      << test_case.label << ": " << reference.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(reference.extracted, data));
  std::vector<std::string> reference_lines = IndexFreeLines(reference_log);
  std::sort(reference_lines.begin(), reference_lines.end());

  for (uint32_t batch_size : {4u, 32u}) {
    auto [result, log] = LoggedCrawl(test_case, data, k, batch_size);
    ASSERT_TRUE(result.status.ok())
        << test_case.label << " @ batch " << batch_size << ": "
        << result.status.ToString();
    EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, data))
        << test_case.label << " @ batch " << batch_size;
    EXPECT_EQ(result.queries_issued, reference.queries_issued)
        << test_case.label << " @ batch " << batch_size
        << ": batching must not change the paper's cost metric";
    std::vector<std::string> lines = IndexFreeLines(log);
    std::sort(lines.begin(), lines.end());
    EXPECT_EQ(lines, reference_lines)
        << test_case.label << " @ batch " << batch_size
        << ": a batched crawl may reorder the conversation, not change it";
  }
}

TEST_P(BatchCrawlTest, ParallelServerMatchesSequentialConversation) {
  const BatchCase test_case = MakeCases()[GetParam()];
  const Dataset data = test_case.make_data();
  const uint64_t k = std::max(test_case.k, data.MaxPointMultiplicity());

  auto [reference, reference_log] = LoggedCrawl(test_case, data, k, 1);
  ASSERT_TRUE(reference.status.ok());

  auto [result, log] =
      LoggedCrawl(test_case, data, k, /*batch_size=*/16,
                  /*max_parallelism=*/4);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, data))
      << test_case.label;
  EXPECT_EQ(result.queries_issued, reference.queries_issued)
      << test_case.label;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BatchCrawlTest,
                         ::testing::Range<size_t>(0, 6),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return MakeCases()[info.param].label;
                         });

// The paper's Figures 5/6 worked example: the equivalence gate the issue
// asks for, on the exact instance whose query count the paper walks
// through.
TEST(BatchCrawlTest, PaperCategoricalExampleEquivalentAcrossBatchSizes) {
  using testing_util::PaperFigure5Dataset;
  using testing_util::kPaperFigure5K;
  auto data = PaperFigure5Dataset();

  for (const bool lazy : {false, true}) {
    uint64_t reference_queries = 0;
    size_t reference_extracted = 0;
    for (uint32_t batch_size : {1u, 4u, 32u}) {
      LocalServer server(data, kPaperFigure5K);
      SliceCoverCrawler crawler(lazy);
      CrawlOptions options;
      options.batch_size = batch_size;
      CrawlResult result = crawler.Crawl(&server, options);
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
      if (batch_size == 1) {
        reference_queries = result.queries_issued;
        reference_extracted = result.extracted.size();
      } else {
        EXPECT_EQ(result.queries_issued, reference_queries)
            << (lazy ? "lazy" : "eager") << " @ batch " << batch_size;
        EXPECT_EQ(result.extracted.size(), reference_extracted);
      }
    }
  }
}

}  // namespace
}  // namespace hdc
