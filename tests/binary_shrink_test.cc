// Copyright (c) hdc authors. Apache-2.0 license.
#include "core/binary_shrink.h"

#include <gtest/gtest.h>

#include <memory>

#include "gen/synthetic.h"
#include "server/local_server.h"
#include "test_util.h"

namespace hdc {
namespace {

using testing_util::ExpectExactExtraction;

TEST(BinaryShrinkTest, RejectsUnboundedSchema) {
  BinaryShrink crawler;
  EXPECT_FALSE(crawler.ValidateSchema(*Schema::Numeric(1)).ok());
  EXPECT_TRUE(
      crawler.ValidateSchema(*Schema::NumericBounded({{0, 100}})).ok());
}

TEST(BinaryShrinkTest, RejectsCategoricalSchema) {
  BinaryShrink crawler;
  EXPECT_FALSE(crawler.ValidateSchema(*Schema::Categorical({4})).ok());
}

TEST(BinaryShrinkTest, CrawlReturnsInvalidArgumentForBadSchema) {
  auto data = std::make_shared<Dataset>(Schema::Numeric(1));
  data->Add(Tuple({1}));
  LocalServer server(data, 4);
  BinaryShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  EXPECT_TRUE(result.status.IsInvalidArgument());
}

TEST(BinaryShrinkTest, ExtractsExactMultiset) {
  SyntheticNumericOptions gen;
  gen.d = 2;
  gen.n = 500;
  gen.value_range = 128;
  gen.seed = 3;
  Dataset data = GenerateSyntheticNumeric(gen);
  const uint64_t k = 8;
  ASSERT_LE(data.MaxPointMultiplicity(), k);
  BinaryShrink crawler;
  ExpectExactExtraction(&crawler, data, k);
}

TEST(BinaryShrinkTest, SingleTupleDataset) {
  SchemaPtr schema = Schema::NumericBounded({{0, 1000}});
  auto data = std::make_shared<Dataset>(schema);
  data->Add(Tuple({123}));
  LocalServer server(data, 4);
  BinaryShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.extracted.size(), 1u);
  EXPECT_EQ(result.queries_issued, 1u);
}

TEST(BinaryShrinkTest, EmptyDataset) {
  SchemaPtr schema = Schema::NumericBounded({{0, 1000}});
  auto data = std::make_shared<Dataset>(schema);
  LocalServer server(data, 4);
  BinaryShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.extracted.size(), 0u);
  EXPECT_EQ(result.queries_issued, 1u);
}

TEST(BinaryShrinkTest, DetectsUnsolvableInstance) {
  SchemaPtr schema = Schema::NumericBounded({{0, 15}});
  auto data = std::make_shared<Dataset>(schema);
  for (int i = 0; i < 5; ++i) data->Add(Tuple({9}));
  LocalServer server(data, /*k=*/4);
  BinaryShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  EXPECT_TRUE(result.status.IsUnsolvable());
}

TEST(BinaryShrinkTest, CostDependsOnDomainSize) {
  // The same 2 adjacent tuples in a tight vs. huge domain: binary-shrink
  // needs ~log2(domain) splits to separate them (the weakness motivating
  // rank-shrink, whose split points are data values).
  auto run = [](Value hi) {
    SchemaPtr schema = Schema::NumericBounded({{0, hi}});
    auto data = std::make_shared<Dataset>(schema);
    data->Add(Tuple({0}));
    data->Add(Tuple({1}));
    LocalServer server(data, /*k=*/1);
    BinaryShrink crawler;
    CrawlResult result = crawler.Crawl(&server);
    EXPECT_TRUE(result.status.ok());
    EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
    return result.queries_issued;
  };
  uint64_t narrow = run(15);
  uint64_t wide = run((1 << 20) - 1);
  EXPECT_GT(wide, narrow + 10);
}

TEST(BinaryShrinkTest, NegativeDomains) {
  SchemaPtr schema = Schema::NumericBounded({{-50, 49}});
  auto data = std::make_shared<Dataset>(schema);
  for (Value v : {-50, -17, -1, 0, 13, 49}) data->Add(Tuple({v}));
  LocalServer server(data, /*k=*/2);
  BinaryShrink crawler;
  CrawlResult result = crawler.Crawl(&server);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(Dataset::MultisetEquals(result.extracted, *data));
}

}  // namespace
}  // namespace hdc
