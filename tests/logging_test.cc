// Copyright (c) hdc authors. Apache-2.0 license.
#include "util/logging.h"

#include <gtest/gtest.h>

namespace hdc {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotEvaluateExpensively) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  // Streaming into a disabled message must be cheap and safe.
  for (int i = 0; i < 1000; ++i) {
    HDC_LOG(Debug) << "value " << i;
    HDC_LOG(Error) << "also off " << i;
  }
  SetLogLevel(original);
}

TEST(LoggingTest, EnabledMessageStreamsAllTypes) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Smoke: must not crash with mixed operand types.
  HDC_LOG(Error) << "n=" << 42 << " f=" << 3.14 << " s=" << std::string("x");
  SetLogLevel(original);
}

}  // namespace
}  // namespace hdc
