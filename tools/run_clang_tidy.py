#!/usr/bin/env python3
# Copyright (c) hdc authors. Apache-2.0 license.
"""clang-tidy gate: run over src/, diff findings against a baseline.

Drives clang-tidy (config in .clang-tidy) over every .cc under src/ using
the compilation database of a configured build directory, normalizes the
findings to stable `file:check-name` keys, and diffs them against the
committed suppression baseline (tools/clang_tidy_baseline.txt):

  - a finding NOT in the baseline hard-fails (exit 1) — new debt is
    rejected at the PR gate;
  - a baseline entry with no finding is reported as stale (informational),
    so the baseline only ever shrinks;
  - --update-baseline rewrites the baseline from the current findings (the
    escape hatch for a deliberate, reviewed suppression).

Keys are file-and-check rather than file-line-check so an unrelated edit
shifting lines does not invalidate the baseline.

When clang-tidy is not installed the gate SKIPS with exit 0 (and a loud
message): local gcc-only environments cannot run it, and the CI clang leg
is the authoritative run. Pass --require to turn a missing binary into a
failure (what CI does).

Usage:
  tools/run_clang_tidy.py --build-dir build [--require] [--update-baseline]
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(ROOT, "tools", "clang_tidy_baseline.txt")

FINDING_RE = re.compile(
    r"^(?P<file>[^:\s][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): .* \[(?P<check>[\w.,-]+)\]$")


def load_baseline():
    if not os.path.exists(BASELINE):
        return set()
    entries = set()
    with open(BASELINE, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def list_sources(compile_db_path):
    with open(compile_db_path, "r", encoding="utf-8") as f:
        db = json.load(f)
    sources = []
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(path, ROOT)
        if rel.startswith("src" + os.sep) and rel.endswith(".cc"):
            sources.append(path)
    return sorted(set(sources))


def run_one(tidy, build_dir, source):
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", source],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        rel = os.path.relpath(m.group("file"), ROOT).replace(os.sep, "/")
        if not rel.startswith("src/"):
            continue  # third-party / system headers are not our debt
        for check in m.group("check").split(","):
            findings.add("%s:%s" % (rel, check))
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(ROOT, "build"),
                        help="build dir holding compile_commands.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: search PATH)")
    parser.add_argument("--require", action="store_true",
                        help="fail instead of skipping when clang-tidy or "
                             "the compilation database is missing")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    args = parser.parse_args()

    tidy = args.clang_tidy or shutil.which("clang-tidy")
    compile_db = os.path.join(args.build_dir, "compile_commands.json")
    missing = []
    if tidy is None:
        missing.append("clang-tidy binary (install clang-tools)")
    if not os.path.exists(compile_db):
        missing.append("%s (configure with CMake first; "
                       "CMAKE_EXPORT_COMPILE_COMMANDS is on by default)"
                       % compile_db)
    if missing:
        for item in missing:
            print("run_clang_tidy: missing %s" % item, file=sys.stderr)
        if args.require:
            return 1
        print("run_clang_tidy: SKIPPED (gcc-only environment?); the CI "
              "clang leg is authoritative", file=sys.stderr)
        return 0

    sources = list_sources(compile_db)
    if not sources:
        print("run_clang_tidy: compilation database lists no src/ files",
              file=sys.stderr)
        return 1
    print("run_clang_tidy: %d files, %d jobs" % (len(sources), args.jobs))

    findings = set()
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for result in pool.map(
                lambda s: run_one(tidy, args.build_dir, s), sources):
            findings |= result

    if args.update_baseline:
        with open(BASELINE, "w", encoding="utf-8") as f:
            f.write("# clang-tidy suppression baseline: one `file:check` "
                    "per line.\n")
            f.write("# Regenerate with tools/run_clang_tidy.py "
                    "--update-baseline; additions need review.\n")
            for key in sorted(findings):
                f.write(key + "\n")
        print("run_clang_tidy: baseline rewritten with %d entries"
              % len(findings))
        return 0

    baseline = load_baseline()
    new = sorted(findings - baseline)
    stale = sorted(baseline - findings)
    for key in stale:
        print("stale baseline entry (fixed? remove it): %s" % key)
    for key in new:
        print("NEW finding: %s" % key)
    if new:
        print("run_clang_tidy: %d new finding(s) not in baseline" % len(new),
              file=sys.stderr)
        return 1
    print("run_clang_tidy: clean (%d baselined, %d stale)"
          % (len(baseline), len(stale)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
