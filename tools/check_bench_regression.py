#!/usr/bin/env python3
# Copyright (c) hdc authors. Apache-2.0 license.
"""Bench regression gate.

Compares freshly produced bench CSVs against the checked-in baselines in
bench_results/baseline/. The crawls behind the figure benches are fully
deterministic (fixed datasets, fixed ranking seeds), so *query-cost* cells
must match the baseline exactly: any drift is a hard failure — it means an
algorithm's conversation changed. Wall-time-like columns (header containing
"seconds", "wall" or "time") are machine noise: drift there only warns.

CSVs with a `transport`, `engine`, `shards`, `cache` or `plan` column (e.g.
transport_roundtrip.csv, which times the same workload in-process and over
the loopback wire; bench_index.csv, which times the same query script under
each evaluation engine; or bench_sharded.csv, which drives the same script
through 1-, 2- and 4-shard scatter-gather backends) are compared per group:
rows are matched only against baseline rows of the same
transport/engine/shard-count, so a loopback wall-time is never judged
against an in-process baseline (or vice versa). A group present in the
baseline but absent from the current run is a hard failure; a new group in
the current run is a warning until its rows are committed to the baseline.

bench_index.csv additionally carries a speedup gate: on the headline
"conjunction-selective" shape the bitmap engine must beat the legacy engine
by at least 4x wall time. Falling under the floor is a hard failure even
though the cells are wall times — the ratio is between two engines measured
back-to-back on the same machine, so machine speed cancels out.
bench_cache.csv carries the analogous gate on *billed query counts*: at the
1% mutation rate the delta re-crawl must bill at least 10x fewer server
queries than the from-scratch re-crawl. bench_planner.csv carries the
predicate-pushdown gate, also on billed queries: the pushdown crawl must
bill no more than crawling only the satisfying subspace, and at least 3x
fewer queries than crawl-then-filter.

Every baseline CSV must have a matching current result: a baseline with no
current file means a bench was deleted, renamed, or silently skipped — a
hard failure, because a gate that compares nothing passes vacuously. The
same logic rejects a run that compared zero files overall. Pass
--allow-missing only for a deliberate transition (e.g. retiring a figure):
it downgrades unmatched baselines (and an empty comparison) to warnings.

Usage:
    tools/check_bench_regression.py \
        [--baseline bench_results/baseline] [--current bench_results] \
        [--time-tolerance 0.25] [--allow-missing]

Exit status: 0 clean (warnings allowed), 1 on any hard failure.
"""

import argparse
import csv
import sys
from pathlib import Path


def is_time_column(header: str) -> bool:
    h = header.lower()
    return "seconds" in h or "wall" in h or "time" in h


def as_float(cell: str):
    try:
        return float(cell)
    except ValueError:
        return None


def read_csv(path: Path):
    with path.open(newline="") as f:
        rows = list(csv.reader(f))
    if not rows:
        return [], []
    return rows[0], rows[1:]


def compare_rows(name: str, header: list, base_rows: list, cur_rows: list,
                 time_tolerance: float, failures: list,
                 warnings: list) -> None:
    for row_idx, (base_row, cur_row) in enumerate(zip(base_rows, cur_rows)):
        if len(base_row) != len(cur_row):
            failures.append(f"{name} row {row_idx + 1}: cell count changed")
            continue
        for col_idx, (base_cell, cur_cell) in enumerate(
                zip(base_row, cur_row)):
            if base_cell == cur_cell:
                continue
            col_name = (header[col_idx]
                        if col_idx < len(header) else f"col{col_idx}")
            where = f"{name} row {row_idx + 1} [{col_name}]"
            base_num, cur_num = as_float(base_cell), as_float(cur_cell)
            if is_time_column(col_name):
                if base_num is None or cur_num is None:
                    warnings.append(f"{where}: {base_cell!r} -> {cur_cell!r}")
                    continue
                denom = max(abs(base_num), 1e-12)
                drift = abs(cur_num - base_num) / denom
                if drift > time_tolerance:
                    warnings.append(
                        f"{where}: wall-time drift {drift:.1%} "
                        f"({base_cell} -> {cur_cell})")
                continue
            # Everything else is a deterministic measurement — query costs,
            # extraction sizes, bound ratios. Exact mismatch is a failure.
            failures.append(f"{where}: {base_cell!r} -> {cur_cell!r} "
                            "(query-cost drift)")


# Columns whose value partitions rows into separately-measured populations.
# Rows are only ever compared within a group: a loopback wall-time against a
# loopback baseline, a bitmap-engine row against a bitmap-engine baseline, a
# 4-shard scatter-gather row against a 4-shard baseline, a delta re-crawl
# row against a delta baseline.
GROUP_COLUMNS = ("transport", "engine", "shards", "cache", "plan")

# bench_index speedup gate: on the headline shape the bitmap engine must
# beat legacy by this factor. See bench/bench_index.cc.
INDEX_SPEEDUP_FILE = "bench_index.csv"
INDEX_SPEEDUP_SHAPE = "conjunction-selective"
INDEX_SPEEDUP_FLOOR = 4.0

# bench_cache query gate: at the headline mutation rate the delta re-crawl
# must bill this many times fewer server queries than the from-scratch
# re-crawl. See bench/bench_cache.cc. Unlike the index gate this compares
# deterministic query counts, not wall times.
CACHE_SPEEDUP_FILE = "bench_cache.csv"
CACHE_SPEEDUP_RATE = "0.01"
CACHE_SPEEDUP_FLOOR = 10.0

# bench_planner gate, on deterministic billed-query counts: predicate
# pushdown must bill no more than crawling only the satisfying subspace,
# and at least PLANNER_SPEEDUP_FLOOR times fewer queries than
# crawl-then-filter. See bench/bench_planner.cc.
PLANNER_FILE = "bench_planner.csv"
PLANNER_SPEEDUP_FLOOR = 3.0


def group_by_column(rows: list, key_idx: int) -> dict:
    groups = {}
    for row in rows:
        key = row[key_idx] if key_idx < len(row) else ""
        groups.setdefault(key, []).append(row)
    return groups


def check_index_speedup(header: list, rows: list, failures: list) -> None:
    """Hard-fails unless bitmap beats legacy by INDEX_SPEEDUP_FLOOR on the
    headline shape. Operates on the *current* run: the ratio is between two
    engines measured back-to-back, so machine speed cancels out and the
    check stays meaningful even though the cells are wall times."""
    try:
        engine_idx = header.index("engine")
        shape_idx = header.index("shape")
        wall_idx = header.index("wall_seconds")
    except ValueError:
        failures.append(f"{INDEX_SPEEDUP_FILE}: expected engine/shape/"
                        "wall_seconds columns for the speedup gate")
        return
    walls = {}
    for row in rows:
        if len(row) > max(engine_idx, shape_idx, wall_idx) and \
                row[shape_idx] == INDEX_SPEEDUP_SHAPE:
            walls[row[engine_idx]] = as_float(row[wall_idx])
    legacy, bitmap = walls.get("legacy"), walls.get("bitmap")
    if legacy is None or bitmap is None:
        failures.append(
            f"{INDEX_SPEEDUP_FILE}: shape '{INDEX_SPEEDUP_SHAPE}' lacks "
            "legacy/bitmap wall times — cannot evaluate the speedup gate")
        return
    if bitmap <= 0:
        return  # degenerate timer resolution; the ratio is vacuously fine
    ratio = legacy / bitmap
    if ratio < INDEX_SPEEDUP_FLOOR:
        failures.append(
            f"{INDEX_SPEEDUP_FILE} [{INDEX_SPEEDUP_SHAPE}]: bitmap is only "
            f"{ratio:.2f}x faster than legacy (floor "
            f"{INDEX_SPEEDUP_FLOOR:.1f}x; legacy {legacy:.6f}s, bitmap "
            f"{bitmap:.6f}s)")


def check_cache_speedup(header: list, rows: list, failures: list) -> None:
    """Hard-fails unless the delta re-crawl bills CACHE_SPEEDUP_FLOOR times
    fewer queries than the full re-crawl at the headline mutation rate.
    Operates on the *current* run; billed-query counts are deterministic,
    so the ratio carries no machine noise at all."""
    try:
        cache_idx = header.index("cache")
        rate_idx = header.index("rate")
        billed_idx = header.index("billed queries")
    except ValueError:
        failures.append(f"{CACHE_SPEEDUP_FILE}: expected cache/rate/"
                        "'billed queries' columns for the cache gate")
        return
    billed = {}
    for row in rows:
        if len(row) > max(cache_idx, rate_idx, billed_idx) and \
                row[rate_idx] == CACHE_SPEEDUP_RATE:
            billed[row[cache_idx]] = as_float(row[billed_idx])
    full, delta = billed.get("full"), billed.get("delta")
    if full is None or delta is None:
        failures.append(
            f"{CACHE_SPEEDUP_FILE}: rate '{CACHE_SPEEDUP_RATE}' lacks "
            "full/delta billed-query counts — cannot evaluate the cache "
            "gate")
        return
    if delta <= 0:
        return  # nothing billed at all; the ratio is vacuously fine
    ratio = full / delta
    if ratio < CACHE_SPEEDUP_FLOOR:
        failures.append(
            f"{CACHE_SPEEDUP_FILE} [rate={CACHE_SPEEDUP_RATE}]: delta "
            f"re-crawl bills only {ratio:.2f}x fewer queries than full "
            f"(floor {CACHE_SPEEDUP_FLOOR:.1f}x; full {full:.0f}, delta "
            f"{delta:.0f})")


def check_planner_speedup(header: list, rows: list, failures: list) -> None:
    """Hard-fails unless, on the current run, the pushdown crawl bills (a)
    no more queries than the subspace-only crawl and (b) at least
    PLANNER_SPEEDUP_FLOOR times fewer than crawl-then-filter. Billed-query
    counts are deterministic, so the ratios carry no machine noise."""
    try:
        plan_idx = header.index("plan")
        billed_idx = header.index("billed queries")
    except ValueError:
        failures.append(f"{PLANNER_FILE}: expected plan/'billed queries' "
                        "columns for the planner gate")
        return
    billed = {}
    for row in rows:
        if len(row) > max(plan_idx, billed_idx):
            billed[row[plan_idx]] = as_float(row[billed_idx])
    filter_q = billed.get("filter")
    pushdown_q = billed.get("pushdown")
    subspace_q = billed.get("subspace")
    if filter_q is None or pushdown_q is None or subspace_q is None:
        failures.append(
            f"{PLANNER_FILE}: needs filter/pushdown/subspace billed-query "
            "rows — cannot evaluate the planner gate")
        return
    if pushdown_q > subspace_q:
        failures.append(
            f"{PLANNER_FILE}: pushdown bills {pushdown_q:.0f} queries, more "
            f"than the subspace-only crawl's {subspace_q:.0f} — the planner "
            "descends outside the satisfying subspace")
    if pushdown_q <= 0:
        return  # degenerate; the exact-match comparison already covers it
    ratio = filter_q / pushdown_q
    if ratio < PLANNER_SPEEDUP_FLOOR:
        failures.append(
            f"{PLANNER_FILE}: pushdown is only {ratio:.2f}x cheaper than "
            f"crawl-then-filter (floor {PLANNER_SPEEDUP_FLOOR:.1f}x; filter "
            f"{filter_q:.0f}, pushdown {pushdown_q:.0f})")


def compare_file(baseline: Path, current: Path, time_tolerance: float,
                 failures: list, warnings: list) -> None:
    name = baseline.name
    base_header, base_rows = read_csv(baseline)
    cur_header, cur_rows = read_csv(current)

    if base_header != cur_header:
        failures.append(f"{name}: header changed "
                        f"{base_header} -> {cur_header}")
        return

    group_col = next((c for c in GROUP_COLUMNS if c in base_header), None)
    if group_col is not None:
        # Same-group comparison only: loopback wall-times must never be
        # judged against in-process baselines, nor bitmap-engine rows
        # against legacy ones. Rows are grouped by the tag column and each
        # group compared positionally.
        key_idx = base_header.index(group_col)
        base_groups = group_by_column(base_rows, key_idx)
        cur_groups = group_by_column(cur_rows, key_idx)
        for key, base_group in base_groups.items():
            cur_group = cur_groups.get(key)
            if cur_group is None:
                failures.append(
                    f"{name}: {group_col} '{key}' present in the "
                    "baseline but missing from the current run")
                continue
            if len(base_group) != len(cur_group):
                failures.append(
                    f"{name} [{group_col}={key}]: row count changed "
                    f"{len(base_group)} -> {len(cur_group)}")
                continue
            compare_rows(f"{name} [{group_col}={key}]", base_header,
                         base_group, cur_group, time_tolerance, failures,
                         warnings)
        for key in cur_groups:
            if key not in base_groups:
                warnings.append(
                    f"{name}: new {group_col} '{key}' has no baseline "
                    "rows — commit them to put it under the gate")
        if name == INDEX_SPEEDUP_FILE:
            check_index_speedup(cur_header, cur_rows, failures)
        if name == CACHE_SPEEDUP_FILE:
            check_cache_speedup(cur_header, cur_rows, failures)
        if name == PLANNER_FILE:
            check_planner_speedup(cur_header, cur_rows, failures)
        return

    if len(base_rows) != len(cur_rows):
        failures.append(f"{name}: row count changed "
                        f"{len(base_rows)} -> {len(cur_rows)}")
        return
    compare_rows(name, base_header, base_rows, cur_rows, time_tolerance,
                 failures, warnings)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench_results/baseline",
                        type=Path)
    parser.add_argument("--current", default="bench_results", type=Path)
    parser.add_argument("--time-tolerance", default=0.25, type=float,
                        help="relative wall-time drift that triggers a "
                             "warning (default 0.25)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="downgrade baselines without a current CSV "
                             "(and an empty comparison) from hard failures "
                             "to warnings — only for deliberately retiring "
                             "a bench")
    args = parser.parse_args()

    if not args.baseline.is_dir():
        print(f"error: baseline directory {args.baseline} not found",
              file=sys.stderr)
        return 1

    failures, warnings = [], []
    compared = 0
    for baseline in sorted(args.baseline.glob("*.csv")):
        current = args.current / baseline.name
        if not current.is_file():
            # A baseline nobody produces anymore must not pass silently:
            # deleting or renaming a bench would otherwise retire its gate
            # without anyone deciding to.
            sink = warnings if args.allow_missing else failures
            sink.append(f"{baseline.name}: missing from {args.current} "
                        "(bench deleted, renamed, or not run; rerun it, or "
                        "pass --allow-missing to retire it deliberately)")
            continue
        compared += 1
        compare_file(baseline, current, args.time_tolerance, failures,
                     warnings)

    if compared == 0:
        sink = warnings if args.allow_missing else failures
        sink.append(f"no baseline CSV in {args.baseline} was matched by a "
                    f"current result in {args.current} — the gate compared "
                    "nothing")

    if args.current.is_dir():
        baseline_names = {b.name for b in args.baseline.glob("*.csv")}
        for extra in sorted(args.current.glob("*.csv")):
            if extra.name not in baseline_names:
                warnings.append(
                    f"{extra.name}: present in {args.current} but has no "
                    f"baseline — new bench? commit its CSV to "
                    f"{args.baseline} to put it under the gate")

    for w in warnings:
        print(f"WARNING: {w}")
    for f in failures:
        print(f"FAIL: {f}")
    print(f"compared {compared} CSV(s) against {args.baseline}: "
          f"{len(failures)} failure(s), {len(warnings)} warning(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
