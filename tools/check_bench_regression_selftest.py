#!/usr/bin/env python3
# Copyright (c) hdc authors. Apache-2.0 license.
"""Negative selftest of the bench regression gate.

A gate is only as good as its failure paths: if check_bench_regression.py
ever started passing vacuously — a group silently dropped from a CSV, a
speedup floor no longer evaluated — every bench regression after that would
sail through CI. This script drives the real gate binary over synthetic
baseline/current directories and asserts each guard actually fires:

  1. an untouched copy of the baseline passes;
  2. a current bench_cache.csv missing the whole `delta` cache group is a
     hard failure (not the new-group warning path);
  3. a delta row billing only 2x fewer queries than full at the 1% rate
     trips the 10x cache floor;
  4. a current run without the gated 1% rate rows cannot evaluate the
     floor and hard-fails instead of skipping it;
  5. a drifted deterministic cell (billed queries) hard-fails within a
     group even when every group is present;
  6. a planner run whose pushdown bills more than the subspace-only crawl
     trips the planner gate;
  7. a pushdown only 2x cheaper than crawl-then-filter trips the 3x
     planner floor;
  8. a planner run missing the pushdown row cannot evaluate the gate and
     hard-fails instead of skipping it.

Exit status: 0 when every expectation holds, 1 otherwise.
"""

import subprocess
import sys
import tempfile
from pathlib import Path

GATE = Path(__file__).resolve().parent / "check_bench_regression.py"

BASELINE_CACHE_CSV = """\
cache,rate,changed,billed queries,cheap revalidations,regions,extracted,wall seconds
full,0,0,1000,0,500,9000,0.020
delta,0,0,0,0,500,9000,0.010
full,0.01,90,1000,0,500,9000,0.020
delta,0.01,90,80,400,500,9000,0.015
"""


BASELINE_PLANNER_CSV = """\
plan,algorithm,selectivity,billed queries,extracted,wall_seconds
filter,hybrid,0.033654,1086,69768,0.059794
pushdown,hybrid,0.033654,95,2348,0.002506
subspace,hybrid,0.033654,104,2348,0.001137
"""


def run_gate(baseline: Path, current: Path):
    proc = subprocess.run(
        [sys.executable, str(GATE), "--baseline", str(baseline),
         "--current", str(current)],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def write(path: Path, content: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)


def expect(label: str, ok: bool, output: str, problems: list) -> None:
    if ok:
        print(f"ok: {label}")
    else:
        problems.append(label)
        print(f"SELFTEST FAIL: {label}\n--- gate output ---\n{output}")


def main() -> int:
    problems = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        baseline = root / "baseline"
        write(baseline / "bench_cache.csv", BASELINE_CACHE_CSV)

        # 1. Clean copy passes.
        current = root / "clean"
        write(current / "bench_cache.csv", BASELINE_CACHE_CSV)
        code, out = run_gate(baseline, current)
        expect("identical run passes", code == 0, out, problems)

        # 2. Dropping the delta group entirely is a hard failure.
        current = root / "no_delta_group"
        write(current / "bench_cache.csv", "\n".join(
            line for line in BASELINE_CACHE_CSV.splitlines()
            if not line.startswith("delta,")) + "\n")
        code, out = run_gate(baseline, current)
        expect("missing cache group hard-fails",
               code == 1 and "missing from the current run" in out, out,
               problems)

        # 3. A delta crawl only 2x cheaper than full trips the 10x floor.
        #    (The baseline is edited identically so the per-cell comparison
        #    stays clean and the floor is what fails.)
        slow = BASELINE_CACHE_CSV.replace(
            "delta,0.01,90,80,", "delta,0.01,90,500,")
        current = root / "below_floor"
        write(current / "bench_cache.csv", slow)
        slow_baseline = root / "below_floor_baseline"
        write(slow_baseline / "bench_cache.csv", slow)
        code, out = run_gate(slow_baseline, current)
        expect("below-floor cache ratio hard-fails",
               code == 1 and "fewer queries than full" in out, out, problems)

        # 4. A run without the gated rate rows must fail, not skip the gate.
        trimmed = "\n".join(
            line for line in BASELINE_CACHE_CSV.splitlines()
            if ",0.01," not in line) + "\n"
        current = root / "no_rate_rows"
        write(current / "bench_cache.csv", trimmed)
        trimmed_baseline = root / "no_rate_rows_baseline"
        write(trimmed_baseline / "bench_cache.csv", trimmed)
        code, out = run_gate(trimmed_baseline, current)
        expect("missing 1% rate rows hard-fail",
               code == 1 and "cannot evaluate the cache gate" in out, out,
               problems)

        # 5. Deterministic-cell drift inside a present group hard-fails.
        current = root / "drift"
        write(current / "bench_cache.csv",
              BASELINE_CACHE_CSV.replace("full,0.01,90,1000,",
                                         "full,0.01,90,999,"))
        code, out = run_gate(baseline, current)
        expect("billed-query drift hard-fails",
               code == 1 and "query-cost drift" in out, out, problems)

        # 6. Pushdown billing more than the subspace-only crawl trips the
        #    planner gate. (Baseline edited identically: the floor, not the
        #    cell comparison, must be what fails.)
        outside = BASELINE_PLANNER_CSV.replace(
            "pushdown,hybrid,0.033654,95,", "pushdown,hybrid,0.033654,120,")
        current = root / "planner_outside_subspace"
        write(current / "bench_planner.csv", outside)
        outside_baseline = root / "planner_outside_subspace_baseline"
        write(outside_baseline / "bench_planner.csv", outside)
        code, out = run_gate(outside_baseline, current)
        expect("pushdown above subspace cost hard-fails",
               code == 1 and "descends outside the satisfying subspace"
               in out, out, problems)

        # 7. A pushdown only ~2x cheaper than filter trips the 3x floor.
        shallow = BASELINE_PLANNER_CSV.replace(
            "pushdown,hybrid,0.033654,95,", "pushdown,hybrid,0.033654,500,"
        ).replace("subspace,hybrid,0.033654,104,",
                  "subspace,hybrid,0.033654,600,")
        current = root / "planner_below_floor"
        write(current / "bench_planner.csv", shallow)
        shallow_baseline = root / "planner_below_floor_baseline"
        write(shallow_baseline / "bench_planner.csv", shallow)
        code, out = run_gate(shallow_baseline, current)
        expect("below-floor planner ratio hard-fails",
               code == 1 and "cheaper than" in out and "crawl-then-filter"
               in out, out, problems)

        # 8. Dropping the pushdown row entirely must fail the gate, not
        #    skip it. (The missing-group check also fires when the
        #    baseline has the group; trim both to isolate the gate check.)
        trimmed_planner = "\n".join(
            line for line in BASELINE_PLANNER_CSV.splitlines()
            if not line.startswith("pushdown,")) + "\n"
        current = root / "planner_no_pushdown"
        write(current / "bench_planner.csv", trimmed_planner)
        trimmed_planner_baseline = root / "planner_no_pushdown_baseline"
        write(trimmed_planner_baseline / "bench_planner.csv",
              trimmed_planner)
        code, out = run_gate(trimmed_planner_baseline, current)
        expect("missing pushdown row hard-fails",
               code == 1 and "cannot evaluate the planner gate" in out, out,
               problems)

    if problems:
        print(f"{len(problems)} selftest expectation(s) failed")
        return 1
    print("bench gate selftest: all expectations held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
