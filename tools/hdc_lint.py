#!/usr/bin/env python3
# Copyright (c) hdc authors. Apache-2.0 license.
"""hdc_lint: AST-free source linter for project invariants.

Encodes the invariants that generic tools (clang-tidy, the compiler) cannot
know, scanning every C++ source under src/. Each rule is a pure function of
the preprocessed text (comments and string/char literals blanked), so the
linter needs no compiler, no compilation database, and runs in milliseconds
as a tier-1 ctest and a CI step.

Rules
  clock-discipline   std::chrono::*_clock::now() / sleep_for / sleep_until
                     appear only in src/util/clock.* — everything else must
                     take an injected hdc::Clock so FakeClock tests stay
                     deterministic.
  thread-discipline  raw std::thread appears only in util/worker_pool plus
                     an explicit allowlist (the epoll endpoint's IO/dispatch
                     threads, multi-crawl lanes, scatter-gather shards).
  mutex-discipline   raw std::mutex / condition_variable / lock_guard /
                     unique_lock / scoped_lock appear only in
                     util/thread_annotations.h — locked state must use the
                     annotated hdc::Mutex so -Wthread-safety sees it.
  include-layers     a file in layer L includes project headers only from
                     layers at or below L in HDC_LAYER_ORDER — the
                     header-level mirror of cmake/HdcLayer.cmake, which only
                     checks declared link edges.
  status-discard     a call to a function declared as returning hdc::Status,
                     written as a bare expression statement, is an ignored
                     error. Backstops [[nodiscard]] for compilers that do
                     not diagnose the class-level attribute.

Exit status: 0 clean, 1 violations found, 2 usage error.
"""

import argparse
import os
import re
import sys

# --- configuration ----------------------------------------------------------

# Mirrors HDC_LAYER_ORDER in cmake/HdcLayer.cmake (lowest first). A file in
# src/<dir>/ may include "dir2/..." only when LAYERS[dir2] <= LAYERS[dir].
LAYERS = {
    "util": 0,
    "data": 1,
    "query": 2,
    "server": 3,
    "net": 4,
    "gen": 5,
    "core": 6,
    "analytics": 7,
}

# Files allowed to read the real clock / sleep: the Clock implementation.
CLOCK_ALLOWLIST = {
    "src/util/clock.h",
    "src/util/clock.cc",
}

# Files allowed to spawn std::thread: the pool itself plus the deliberate
# thread owners (each documents why the pool is not usable there).
THREAD_ALLOWLIST = {
    "src/util/worker_pool.h",
    "src/util/worker_pool.cc",
    "src/net/service_endpoint.h",   # IO thread + dispatch pool members
    "src/net/service_endpoint.cc",
    "src/core/multi_crawl.cc",      # per-job crawl lanes + metrics monitor
    "src/server/sharding.cc",       # scatter threads, one per shard
}

# Files allowed raw std:: locking primitives: the annotated wrappers.
MUTEX_ALLOWLIST = {
    "src/util/thread_annotations.h",
}

CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b"
    r"|\bsleep_for\s*\(|\bsleep_until\s*\(")
THREAD_RE = re.compile(r"\bstd\s*::\s*thread\b")
MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|shared_mutex|timed_mutex|recursive_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# A function (or method) declared/defined as returning Status by value.
STATUS_DECL_RE = re.compile(
    r"\bStatus\s+(?:[A-Za-z_]\w*\s*::\s*)?([A-Za-z_]\w*)\s*\(")

# The same name declared elsewhere with a non-Status return type. A
# name-based check cannot resolve the receiver's type, so any name that is
# ambiguous across the tree (e.g. a void Close() next to a Status Close())
# is dropped from the status-discard rule rather than guessed at.
NON_STATUS_DECL_RE = re.compile(
    r"\b(?:void|bool|int|unsigned|long|float|double|auto|size_t|"
    r"uint8_t|uint16_t|uint32_t|uint64_t|int32_t|int64_t)\s+"
    r"(?:[A-Za-z_]\w*\s*::\s*)?([A-Za-z_]\w*)\s*\(")

# A bare expression statement whose value is a call: optional receiver
# chain, the call itself, `;`, end of line. Anything consuming the value
# (return / assignment / if / (void) / a wrapping macro) fails this shape.
CALL_STMT_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:\s*(?:\.|->|::)\s*[A-Za-z_]\w*)*\s*(?:\.|->|::)\s*)?"
    r"([A-Za-z_]\w*)\s*\(.*\)\s*;\s*$")

CPP_SUFFIXES = (".h", ".hpp", ".cc", ".cpp", ".cxx")


# --- text preprocessing -----------------------------------------------------

def strip_comments_and_strings(text):
    """Blanks comments and string/char literal contents, preserving line
    structure so reported line numbers match the file on disk."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(c)
                i += 1
            elif c == "'":
                state = "char"
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


# --- rules ------------------------------------------------------------------

def relpath(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


def layer_of(rel):
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in LAYERS:
        return parts[1]
    return None


def check_pattern_rule(rel, lines, regex, allowlist, rule, what, findings):
    if rel in allowlist:
        return
    for lineno, line in enumerate(lines, 1):
        if regex.search(line):
            findings.append((rel, lineno, rule,
                             "%s is forbidden here (%s)" % (what, rule)))


def check_includes(rel, raw_lines, stripped_lines, findings):
    layer = layer_of(rel)
    if layer is None:
        return
    rank = LAYERS[layer]
    for lineno, line in enumerate(raw_lines, 1):
        # The include path is a string literal, so it must be read from the
        # raw line; the stripped line gates out commented-out directives.
        if not stripped_lines[lineno - 1].lstrip().startswith("#"):
            continue
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        target = m.group(1).split("/")[0]
        if target in LAYERS and LAYERS[target] > rank:
            findings.append((
                rel, lineno, "include-layers",
                "layer '%s' (rank %d) must not include from layer '%s' "
                "(rank %d); see cmake/HdcLayer.cmake" %
                (layer, rank, target, LAYERS[target])))


def collect_status_functions(files):
    """Names declared anywhere in src/ as returning Status by value, minus
    names that are ambiguous (also declared with a non-Status return)."""
    names = set()
    non_status = set()
    for _, _, stripped in files:
        for m in STATUS_DECL_RE.finditer(stripped):
            names.add(m.group(1))
        for m in NON_STATUS_DECL_RE.finditer(stripped):
            non_status.add(m.group(1))
    # Factory names mint a Status on purpose; discarding the *construction*
    # of a Status (e.g. in a test of the factories) is not an ignored error
    # from a fallible call.
    names.discard("OK")
    return names - non_status


def check_status_discard(rel, lines, status_names, findings):
    prev = ""  # last non-blank line before the current one
    for lineno, line in enumerate(lines, 1):
        stripped_line = line.strip()
        if not stripped_line:
            continue
        m = CALL_STMT_RE.match(line)
        at_statement_start = (
            prev == "" or prev.endswith((";", "{", "}", ":", ")")) or
            prev in ("else", "do"))
        prev = stripped_line
        if not m or not at_statement_start:
            # A continuation line (previous line ended mid-expression, e.g.
            # `Status s =`) can look like a call statement; the value is
            # consumed by the construct it continues.
            continue
        name = m.group(1)
        if name not in status_names:
            continue
        # Declarations look like calls: `Status Foo(int bar);` — the line
        # itself declares, not discards.
        if re.match(r"^\s*(?:virtual\s+)?(?:static\s+)?Status\b", line):
            continue
        findings.append((
            rel, lineno, "status-discard",
            "result of Status-returning '%s(...)' is discarded; check it, "
            "propagate it, or cast to (void) for a best-effort call" % name))


# --- driver -----------------------------------------------------------------

def gather_files(root):
    files = []
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        raise SystemExit("hdc_lint: no src/ under --root %r" % root)
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if not name.endswith(CPP_SUFFIXES):
                continue
            path = os.path.join(dirpath, name)
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
            files.append((relpath(path, root), text,
                          strip_comments_and_strings(text)))
    return files


def run(root):
    files = gather_files(root)
    status_names = collect_status_functions(files)
    findings = []
    for rel, raw, stripped in files:
        lines = stripped.split("\n")
        check_pattern_rule(rel, lines, CLOCK_RE, CLOCK_ALLOWLIST,
                           "clock-discipline",
                           "direct clock read / sleep (inject hdc::Clock)",
                           findings)
        check_pattern_rule(rel, lines, THREAD_RE, THREAD_ALLOWLIST,
                           "thread-discipline",
                           "raw std::thread (use WorkerPool or allowlist)",
                           findings)
        check_pattern_rule(rel, lines, MUTEX_RE, MUTEX_ALLOWLIST,
                           "mutex-discipline",
                           "raw std locking primitive (use hdc::Mutex)",
                           findings)
        check_includes(rel, raw.split("\n"), lines, findings)
        check_status_discard(rel, lines, status_names, findings)
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    args = parser.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    findings = run(root)
    for rel, lineno, rule, message in sorted(findings):
        print("%s:%d: [%s] %s" % (rel, lineno, rule, message))
    if findings:
        print("hdc_lint: %d violation(s)" % len(findings), file=sys.stderr)
        return 1
    print("hdc_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
