#!/usr/bin/env python3
# Copyright (c) hdc authors. Apache-2.0 license.
"""Negative tests for every tools/hdc_lint.py rule.

Builds synthetic source trees in a temp directory — one seeded violation
per rule, plus a clean tree and known false-positive shapes — runs the real
linter against them with --root, and asserts the expected findings (and
only those) are reported. Mirrors the bench-gate selftest pattern
(tools/check_bench_regression_selftest.py): the gate that protects CI is
itself gated by a tier-1 test, so a lint regression that silently stops
flagging violations fails the suite instead of going unnoticed.

Exit status: 0 all scenarios behave, 1 otherwise.
"""

import os
import subprocess
import sys
import tempfile

LINT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "hdc_lint.py")


def write(root, rel, text):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)


def run_lint(root):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", root],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


FAILURES = []


def expect(condition, scenario, detail):
    if condition:
        print("PASS: %s" % scenario)
    else:
        print("FAIL: %s — %s" % (scenario, detail))
        FAILURES.append(scenario)


def scenario(name, files, want_rules, forbid_rules=()):
    """Lints a synthetic tree; asserts every rule in want_rules fires (and
    the exit code matches), and no rule in forbid_rules fires."""
    with tempfile.TemporaryDirectory() as root:
        for rel, text in files.items():
            write(root, rel, text)
        code, out = run_lint(root)
    want_code = 1 if want_rules else 0
    expect(code == want_code, name,
           "exit=%d want %d; output:\n%s" % (code, want_code, out))
    for rule in want_rules:
        expect("[%s]" % rule in out, "%s flags %s" % (name, rule),
               "missing [%s] in output:\n%s" % (rule, out))
    for rule in forbid_rules:
        expect("[%s]" % rule not in out,
               "%s does not flag %s" % (name, rule),
               "unexpected [%s] in output:\n%s" % (rule, out))


def main():
    # --- clock-discipline ---------------------------------------------------
    scenario(
        "clock: steady_clock::now outside util/clock",
        {"src/core/bad.cc":
         "void F() { auto t = std::chrono::steady_clock::now(); }\n"},
        ["clock-discipline"])
    scenario(
        "clock: sleep_for outside util/clock",
        {"src/server/bad.cc":
         "void F() { std::this_thread::sleep_for(d); }\n"},
        ["clock-discipline"])
    scenario(
        "clock: util/clock.cc is allowlisted",
        {"src/util/clock.cc":
         "auto Now() { return std::chrono::steady_clock::now(); }\n"},
        [])
    scenario(
        "clock: commented-out clock read is ignored",
        {"src/core/ok.cc":
         "// auto t = std::chrono::steady_clock::now();\n"},
        [])

    # --- thread-discipline --------------------------------------------------
    scenario(
        "thread: std::thread outside the allowlist",
        {"src/data/bad.cc": "std::thread t([] {});\n"},
        ["thread-discipline"])
    scenario(
        "thread: worker_pool.cc is allowlisted",
        {"src/util/worker_pool.cc": "std::thread t([] {});\n"},
        [])

    # --- mutex-discipline ---------------------------------------------------
    scenario(
        "mutex: raw std::mutex outside thread_annotations.h",
        {"src/server/bad.h": "struct S { std::mutex mu; };\n"},
        ["mutex-discipline"])
    scenario(
        "mutex: std::lock_guard is flagged",
        {"src/net/bad.cc": "void F() { std::lock_guard<std::mutex> l(m); }\n"},
        ["mutex-discipline"])
    scenario(
        "mutex: thread_annotations.h is allowlisted",
        {"src/util/thread_annotations.h": "class M { std::mutex mu_; };\n"},
        [])
    scenario(
        "mutex: string literal mentioning std::mutex is ignored",
        {"src/core/ok.cc": 'const char* kMsg = "std::mutex";\n'},
        [])

    # --- include-layers -----------------------------------------------------
    scenario(
        "layers: util including net is an upward edge",
        {"src/util/bad.h": '#include "net/socket.h"\n'},
        ["include-layers"])
    scenario(
        "layers: server including core is an upward edge",
        {"src/server/bad.cc": '#include "core/crawler.h"\n'},
        ["include-layers"])
    scenario(
        "layers: downward and same-layer includes are fine",
        {"src/net/ok.cc":
         '#include "net/socket.h"\n#include "util/status.h"\n'},
        [])

    # --- status-discard -----------------------------------------------------
    scenario(
        "status: bare call discarding a Status is flagged",
        {"src/net/api.h": "Status Connect(int fd);\n",
         "src/net/bad.cc": "void F() {\n  Connect(3);\n}\n"},
        ["status-discard"])
    scenario(
        "status: method call through a receiver is flagged",
        {"src/net/api.h": "struct C { Status Connect(int fd); };\n",
         "src/net/bad.cc": "void F(C* c) {\n  c->Connect(3);\n}\n"},
        ["status-discard"])
    scenario(
        "status: consumed and voided calls are fine",
        {"src/net/api.h": "Status Connect(int fd);\n",
         "src/net/ok.cc":
         "void F() {\n"
         "  Status s = Connect(1);\n"
         "  if (!Connect(2).ok()) return;\n"
         "  (void)Connect(3);\n"
         "  return Connect(4);\n"
         "}\n"},
        [], forbid_rules=["status-discard"])
    scenario(
        "status: continuation line is not a discard",
        {"src/net/api.h": "Status Connect(int fd);\n",
         "src/net/ok.cc":
         "void F(C* c) {\n  Status s =\n      c->Connect(3);\n}\n"},
        [], forbid_rules=["status-discard"])
    scenario(
        "status: name also declared void is ambiguous, skipped",
        {"src/net/api.h":
         "struct A { Status Close(); };\nstruct B { void Close(); };\n",
         "src/net/ok.cc": "void F(B* b) {\n  b->Close();\n}\n"},
        [], forbid_rules=["status-discard"])

    # --- multi-rule tree ----------------------------------------------------
    scenario(
        "all five rules fire together",
        {"src/util/bad.h": '#include "analytics/report.h"\n',
         "src/data/bad.cc":
         "std::thread t([] {});\n"
         "std::mutex mu;\n"
         "auto T() { return std::chrono::system_clock::now(); }\n",
         "src/query/api.h": "Status Run();\n",
         "src/query/bad.cc": "void F() {\n  Run();\n}\n"},
        ["clock-discipline", "thread-discipline", "mutex-discipline",
         "include-layers", "status-discard"])

    print()
    if FAILURES:
        print("hdc_lint_selftest: %d scenario(s) FAILED" % len(FAILURES))
        return 1
    print("hdc_lint_selftest: all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
